#include "predicates/student.h"

#include <algorithm>
#include <cmath>

#include "text/tokenize.h"

namespace topkdup::predicates {

namespace {

std::string JoinFields(const record::Record& rec,
                       std::initializer_list<int> fields) {
  std::string key;
  for (int f : fields) {
    key.append(text::NormalizeText(rec.field(f)));
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

StudentS1::StudentS1(const Corpus* corpus, StudentFields fields) {
  signatures_.resize(corpus->size());
  for (size_t r = 0; r < corpus->size(); ++r) {
    const std::string key =
        JoinFields(corpus->data()[r], {fields.name, fields.class_code,
                                       fields.school_code, fields.birth_date});
    signatures_[r].push_back(key_vocab_.GetOrAdd(key));
  }
}

bool StudentS1::Evaluate(size_t a, size_t b) const {
  return signatures_[a][0] == signatures_[b][0];
}

StudentS2::StudentS2(const Corpus* corpus, StudentFields fields,
                     double min_name_gram_overlap)
    : corpus_(corpus),
      fields_(fields),
      min_name_gram_overlap_(min_name_gram_overlap) {
  signatures_.resize(corpus->size());
  for (size_t r = 0; r < corpus->size(); ++r) {
    const std::string key =
        JoinFields(corpus->data()[r], {fields.class_code, fields.school_code,
                                       fields.birth_date});
    signatures_[r].push_back(key_vocab_.GetOrAdd(key));
  }
}

bool StudentS2::Evaluate(size_t a, size_t b) const {
  if (signatures_[a][0] != signatures_[b][0]) return false;
  const auto& ga = corpus_->QGramSet(a, fields_.name);
  const auto& gb = corpus_->QGramSet(b, fields_.name);
  if (ga.empty() || gb.empty()) return false;
  const int common = text::SortedIntersectionSize(ga, gb);
  const double frac = static_cast<double>(common) /
                      static_cast<double>(std::min(ga.size(), gb.size()));
  return frac >= min_name_gram_overlap_;
}

StudentN1::StudentN1(const Corpus* corpus, StudentFields fields)
    : corpus_(corpus), fields_(fields) {
  signatures_.resize(corpus->size());
  for (size_t r = 0; r < corpus->size(); ++r) {
    const std::string base =
        JoinFields(corpus->data()[r], {fields.class_code, fields.school_code});
    std::string initials = corpus->InitialsOf(r, fields.name);
    std::sort(initials.begin(), initials.end());
    initials.erase(std::unique(initials.begin(), initials.end()),
                   initials.end());
    for (char c : initials) {
      signatures_[r].push_back(key_vocab_.GetOrAdd(base + c));
    }
    std::sort(signatures_[r].begin(), signatures_[r].end());
  }
}

bool StudentN1::Evaluate(size_t a, size_t b) const {
  // Sharing any composite token means class and school match and there is
  // a common initial, which is exactly the predicate.
  return text::SortedIntersectionSize(signatures_[a], signatures_[b]) >= 1;
}

StudentN2::StudentN2(const Corpus* corpus, StudentFields fields,
                     double min_gram_fraction)
    : corpus_(corpus),
      fields_(fields),
      min_gram_fraction_(min_gram_fraction) {
  signatures_.resize(corpus->size());
  for (size_t r = 0; r < corpus->size(); ++r) {
    const std::string base =
        JoinFields(corpus->data()[r], {fields.class_code, fields.school_code});
    for (text::TokenId g : corpus->QGramSet(r, fields.name)) {
      signatures_[r].push_back(
          key_vocab_.GetOrAdd(base + std::to_string(g)));
    }
    std::sort(signatures_[r].begin(), signatures_[r].end());
    signatures_[r].erase(
        std::unique(signatures_[r].begin(), signatures_[r].end()),
        signatures_[r].end());
  }
}

int StudentN2::MinCommon(size_t size_a, size_t size_b) const {
  const size_t smaller = std::min(size_a, size_b);
  return std::max(1, static_cast<int>(std::ceil(
                         min_gram_fraction_ * static_cast<double>(smaller))));
}

bool StudentN2::Evaluate(size_t a, size_t b) const {
  if (signatures_[a].empty() || signatures_[b].empty()) return false;
  const int common =
      text::SortedIntersectionSize(signatures_[a], signatures_[b]);
  const double frac =
      static_cast<double>(common) /
      static_cast<double>(std::min(signatures_[a].size(),
                                   signatures_[b].size()));
  return frac >= min_gram_fraction_;
}

}  // namespace topkdup::predicates
