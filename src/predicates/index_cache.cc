#include "predicates/index_cache.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"

namespace topkdup::predicates {

namespace {

struct CacheCounters {
  metrics::Counter* hits;
  metrics::Counter* misses;
  metrics::Counter* evictions;

  static const CacheCounters& Get() {
    auto& registry = metrics::Registry::Global();
    static const CacheCounters counters = {
        registry.GetCounter("predicates.index_cache.hits"),
        registry.GetCounter("predicates.index_cache.misses"),
        registry.GetCounter("predicates.index_cache.evictions"),
    };
    return counters;
  }
};

}  // namespace

IndexCache::IndexCache(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

IndexCache::Entry* IndexCache::Find(const PairPredicate& pred,
                                    const std::vector<size_t>& items) {
  for (Entry& entry : entries_) {
    if (entry.pred == &pred && entry.items == items) return &entry;
  }
  return nullptr;
}

void IndexCache::EvictOldest() {
  const auto oldest =
      std::min_element(entries_.begin(), entries_.end(),
                       [](const Entry& a, const Entry& b) {
                         return a.tick < b.tick;
                       });
  entries_.erase(oldest);
  CacheCounters::Get().evictions->Increment();
}

std::shared_ptr<const BlockedIndex> IndexCache::GetOrBuild(
    const PairPredicate& pred, const std::vector<size_t>& items) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = Find(pred, items)) {
    entry->tick = ++tick_;
    CacheCounters::Get().hits->Increment();
    return entry->index;
  }
  CacheCounters::Get().misses->Increment();
  BlockedIndex built(pred, items);
  built.EnableCandidateMemo();
  auto index = std::make_shared<const BlockedIndex>(std::move(built));
  if (entries_.size() >= capacity_) EvictOldest();
  entries_.push_back(Entry{&pred, items, index, ++tick_});
  return index;
}

std::shared_ptr<const BlockedIndex> IndexCache::Put(const PairPredicate& pred,
                                                    std::vector<size_t> items,
                                                    BlockedIndex index) {
  index.EnableCandidateMemo();
  auto shared = std::make_shared<const BlockedIndex>(std::move(index));
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = Find(pred, items)) {
    entry->index = shared;
    entry->tick = ++tick_;
    return shared;
  }
  if (entries_.size() >= capacity_) EvictOldest();
  entries_.push_back(Entry{&pred, std::move(items), shared, ++tick_});
  return shared;
}

std::shared_ptr<const BlockedIndex> IndexCache::Lookup(
    const PairPredicate& pred, const std::vector<size_t>& items) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = Find(pred, items)) {
    entry->tick = ++tick_;
    CacheCounters::Get().hits->Increment();
    return entry->index;
  }
  return nullptr;
}

size_t IndexCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t IndexCache::TotalSerializedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const Entry& entry : entries_) {
    total += entry.index->serialized_bytes();
  }
  return total;
}

}  // namespace topkdup::predicates
