#ifndef TOPKDUP_PREDICATES_BLOCKED_INDEX_H_
#define TOPKDUP_PREDICATES_BLOCKED_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "predicates/pair_predicate.h"

namespace topkdup::predicates {

/// Inverted index over the blocking signatures of a set of items (record
/// ids), used to enumerate candidate pairs for one predicate without a
/// Cartesian product.
///
/// Items are addressed by *position* 0..items.size()-1; the caller maps
/// positions back to record ids. Not thread-safe (reuses internal count
/// buffers across queries).
class BlockedIndex {
 public:
  /// Indexes the signatures of `items` under `pred`. `pred` and the corpus
  /// behind it must outlive the index.
  BlockedIndex(const PairPredicate& pred, std::vector<size_t> items);

  /// Calls `fn(position)` for every other item position whose signature
  /// shares at least MinCommon tokens with item `pos`'s signature. Does NOT
  /// evaluate the predicate. Enumeration order is unspecified. If `fn`
  /// returns false the scan stops early.
  void ForEachCandidate(size_t pos,
                        const std::function<bool(size_t)>& fn) const;

  /// Calls `fn(p, q)` (p < q) for every unordered candidate pair, i.e. every
  /// pair passing the blocking filter. Predicate evaluation is again left to
  /// the caller.
  void ForEachCandidatePair(
      const std::function<void(size_t, size_t)>& fn) const;

  size_t item_count() const { return items_.size(); }
  size_t record_id(size_t pos) const { return items_[pos]; }

 private:
  const PairPredicate& pred_;
  std::vector<size_t> items_;
  std::vector<std::vector<uint32_t>> postings_;  // token -> positions
  std::vector<uint32_t> sig_sizes_;
  // Scratch buffers reused across queries.
  mutable std::vector<int> counts_;
  mutable std::vector<uint32_t> touched_;
};

}  // namespace topkdup::predicates

#endif  // TOPKDUP_PREDICATES_BLOCKED_INDEX_H_
