#ifndef TOPKDUP_PREDICATES_BLOCKED_INDEX_H_
#define TOPKDUP_PREDICATES_BLOCKED_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "predicates/pair_predicate.h"

namespace topkdup::predicates {

/// Inverted index over the blocking signatures of a set of items (record
/// ids), used to enumerate candidate pairs for one predicate without a
/// Cartesian product.
///
/// Items are addressed by *position* 0..items.size()-1; the caller maps
/// positions back to record ids. The index itself is immutable after
/// construction; queries write only into a caller-supplied QueryScratch,
/// so concurrent queries with distinct scratches are safe (the parallel
/// collapse/prune paths rely on this).
class BlockedIndex {
 public:
  /// Per-caller query workspace. Reuse across queries to avoid
  /// reallocation; one scratch must not be shared between threads.
  struct QueryScratch {
    std::vector<int> counts;        // Zero outside a query.
    std::vector<uint32_t> touched;  // Positions dirtied by the query.
  };

  /// Indexes the signatures of `items` under `pred`. `pred` and the corpus
  /// behind it must outlive the index.
  BlockedIndex(const PairPredicate& pred, std::vector<size_t> items);

  /// Calls `fn(position)` for every other item position whose signature
  /// shares at least MinCommon tokens with item `pos`'s signature. Does NOT
  /// evaluate the predicate. Enumeration order is deterministic (postings
  /// order) but unspecified. If `fn` returns false the scan stops early.
  void ForEachCandidate(size_t pos, QueryScratch* scratch,
                        const std::function<bool(size_t)>& fn) const;

  /// Convenience overload with a transient scratch; fine for one-off
  /// queries, use the explicit-scratch form in loops.
  void ForEachCandidate(size_t pos,
                        const std::function<bool(size_t)>& fn) const;

  /// Calls `fn(p, q)` (p < q) for every unordered candidate pair, i.e.
  /// every pair passing the blocking filter, restricted to first elements
  /// p in [begin, end). Predicate evaluation is left to the caller. The
  /// parallel pipelines call this per shard with per-shard scratches.
  void ForEachCandidatePairInRange(
      size_t begin, size_t end, QueryScratch* scratch,
      const std::function<void(size_t, size_t)>& fn) const;

  /// Serial scan of all candidate pairs (transient scratch).
  void ForEachCandidatePair(
      const std::function<void(size_t, size_t)>& fn) const;

  size_t item_count() const { return items_.size(); }
  size_t record_id(size_t pos) const { return items_[pos]; }

 private:
  const PairPredicate& pred_;
  std::vector<size_t> items_;
  std::vector<std::vector<uint32_t>> postings_;  // token -> positions
  std::vector<uint32_t> sig_sizes_;
};

}  // namespace topkdup::predicates

#endif  // TOPKDUP_PREDICATES_BLOCKED_INDEX_H_
