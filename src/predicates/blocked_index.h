#ifndef TOPKDUP_PREDICATES_BLOCKED_INDEX_H_
#define TOPKDUP_PREDICATES_BLOCKED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/function_ref.h"
#include "common/status.h"
#include "predicates/pair_predicate.h"

namespace topkdup::predicates {

/// Immutable, compressed, skip-capable inverted index over the blocking
/// signatures of a set of items (record ids), used to enumerate candidate
/// pairs for one predicate without a Cartesian product.
///
/// Items are addressed by *position* 0..items.size()-1; the caller maps
/// positions back to record ids. Internally the index reorders items by
/// signature locality (items with equal or similar signatures become
/// adjacent), which keeps the delta-encoded posting lists small and the
/// per-block signature-size ranges tight; every position a query sees or
/// emits is still the caller's original position.
///
/// Each posting list is stored as varint-encoded deltas in blocks of at
/// most kBlockSize positions, with per-block metadata (last position,
/// min/max member signature size, byte extent). Because items are ordered
/// by signature size, each size class z is one contiguous position range,
/// and enumeration runs per admissible class with that class's uniform
/// threshold thr(z) = MinCommon(|query sig|, z), skipping whole blocks
/// that cannot contain a qualifying candidate:
///
///   * Blocks outside class z's position range are never decoded while
///     class z is enumerated (block binary search jumps to the segment).
///   * A metadata pre-pass sizes each query list's class-z segment; if
///     fewer than thr(z) lists have a non-empty segment the whole class
///     is skipped without decoding a byte.
///   * Within a class, a candidate sharing thr(z) tokens with the query
///     appears in at least one of any chosen (L_z - thr(z) + 1) of the
///     L_z intersecting lists, so only the lists with the SMALLEST class
///     segments are decoded to generate candidates; the thr(z)-1 largest
///     segments are never decoded. Generated candidates short of the
///     threshold are verified by a direct merge of the two sorted
///     signatures (early accept/reject), not by probing posting lists.
///   * Classes whose threshold exceeds min(|query sig|, z) or the number
///     of non-empty query lists are skipped outright (the paper's size
///     filters, e.g. CitationS1's equal-set blocking, make this decisive).
///
/// The candidate *set* enumerated at every MinCommon threshold is exactly
/// the set an uncompressed full scan produces; only the enumeration order
/// (deterministic, but unspecified) and the decoded-posting work differ.
///
/// The index is immutable after construction; queries write only into a
/// caller-supplied QueryScratch, so concurrent queries with distinct
/// scratches are safe (the parallel collapse/prune paths rely on this).
///
/// A built index can be serialized to a versioned, checksummed byte image
/// and later mapped back in O(1) (header validation plus pointer fixup;
/// no per-token allocation) via Deserialize / LoadFromFile.
class BlockedIndex {
 public:
  static constexpr size_t kBlockSize = 128;

  /// Per-caller query workspace. Reuse across queries to avoid
  /// reallocation; one scratch must not be shared between threads.
  struct QueryScratch {
    std::vector<int> counts;        // Zero outside a query.
    std::vector<uint32_t> touched;  // Internal positions dirtied.
    // Threshold table for the cached query signature size: thr[z] is
    // MinCommon(sig, z) for admissible sizes z, kInadmissible otherwise.
    std::vector<int> thresholds;
    std::vector<uint32_t> admissible_sizes;  // Sorted.
    size_t cached_sig_size = static_cast<size_t>(-1);
    const void* cached_pred = nullptr;
    int min_threshold = 1;
    // Decode workspace for the counting pass's current block.
    std::vector<uint32_t> decode_buf;
    // Query tokens with postings, as (token, index within the query
    // signature) — the latter drives the query-side prefix filter.
    std::vector<std::pair<uint32_t, uint32_t>> scan_lists;
    // Per-class view of a query list: the block range holding the class's
    // segment, its posting count, and the rank-filtered prefix of it
    // (metadata only; nothing is decoded to build these).
    struct ClassListRef {
      uint32_t token;
      uint32_t sig_idx;       // Token's index in the query signature.
      uint32_t seg_count;     // Postings in the class segment.
      uint32_t pref_count;    // Postings in blocks with min_rank <= z-thr.
      uint32_t block_begin;   // Relative to the list's first block.
      uint32_t block_end;
      uint32_t pref_end;      // End of the rank-filtered block prefix.
    };
    std::vector<ClassListRef> class_lists;
  };

  /// Indexes the signatures of `items` under `pred`. `pred` and the corpus
  /// behind it must outlive the index.
  BlockedIndex(const PairPredicate& pred, std::vector<size_t> items);

  BlockedIndex(const BlockedIndex&) = delete;
  BlockedIndex& operator=(const BlockedIndex&) = delete;
  // Out of line: MemoState is incomplete here.
  BlockedIndex(BlockedIndex&&) noexcept;
  BlockedIndex& operator=(BlockedIndex&&) noexcept;
  ~BlockedIndex();

  /// Calls `fn(position)` for every other item position whose signature
  /// shares at least MinCommon tokens with item `pos`'s signature. Does NOT
  /// evaluate the predicate. Enumeration order is deterministic but
  /// unspecified. If `fn` returns false the scan stops early.
  template <typename Fn>
  void ForEachCandidate(size_t pos, QueryScratch* scratch, Fn&& fn) const {
    ForEachCandidateImpl(pos, scratch, FunctionRef<bool(size_t)>(fn));
  }

  /// Convenience overload with a transient scratch; fine for one-off
  /// queries, use the explicit-scratch form in loops.
  template <typename Fn>
  void ForEachCandidate(size_t pos, Fn&& fn) const {
    QueryScratch scratch;
    ForEachCandidateImpl(pos, &scratch, FunctionRef<bool(size_t)>(fn));
  }

  /// Calls `fn(p, q)` (p < q) for every unordered candidate pair, i.e.
  /// every pair passing the blocking filter, restricted to first elements
  /// p in [begin, end). Predicate evaluation is left to the caller. The
  /// parallel pipelines call this per shard with per-shard scratches.
  template <typename Fn>
  void ForEachCandidatePairInRange(size_t begin, size_t end,
                                   QueryScratch* scratch, Fn&& fn) const {
    ForEachCandidatePairInRangeImpl(begin, end, scratch,
                                    FunctionRef<void(size_t, size_t)>(fn));
  }

  /// Serial scan of all candidate pairs (transient scratch).
  template <typename Fn>
  void ForEachCandidatePair(Fn&& fn) const {
    QueryScratch scratch;
    ForEachCandidatePairInRangeImpl(0, item_count(), &scratch,
                                    FunctionRef<void(size_t, size_t)>(fn));
  }

  /// Opt-in per-item candidate memoization for resident indexes that are
  /// queried repeatedly (the serve path registers an index once and reuses
  /// it across requests and retries). The first enumeration of an item
  /// decodes postings as usual and records the emitted candidate list; any
  /// repeat enumeration of the same item replays that list in identical
  /// order without touching a block. Memory is bounded by the total
  /// candidate count, which is why one-shot pipeline builds leave this off.
  /// Thread-safe: slots are published with a release CAS and the loser of a
  /// racing fill discards its (identical) copy. Call once, after
  /// construction and before the first query.
  void EnableCandidateMemo();
  bool candidate_memo_enabled() const { return memo_ != nullptr; }

  size_t item_count() const { return n_; }
  size_t record_id(size_t pos) const { return items_[pos]; }

  /// Total postings stored and the bytes of their compressed encoding
  /// (block metadata excluded) — the bench's bytes/posting numerator.
  uint64_t posting_count() const { return posting_count_; }
  size_t compressed_bytes() const { return blob_size_; }
  size_t block_count() const { return block_count_; }
  /// Total size of the serialized image (header + body).
  size_t serialized_bytes() const;

  /// Serializes the index to its versioned on-disk image: a checksummed
  /// 96-byte header followed by the flat body (items, permutations,
  /// signature sizes, token table, block metadata, compressed blob).
  std::string Serialize() const;
  Status SerializeToFile(const std::string& path) const;

  /// Reconstructs an index from a serialized image, taking ownership of
  /// `bytes`. `pred` must be the predicate the image was built under and
  /// `record_count` the size of its corpus; every stored record id and
  /// signature size is validated against them. Malformed, truncated, or
  /// checksum-mismatched input returns InvalidArgument — never UB. Aside
  /// from the byte buffer itself the reconstruction allocates O(1): the
  /// body is validated and adopted in place.
  static StatusOr<BlockedIndex> Deserialize(const PairPredicate& pred,
                                            size_t record_count,
                                            std::string bytes);

  /// Memory-maps a serialized image from `path` (O(1) map + header and
  /// structural validation; postings stay on disk until queries touch
  /// them). Falls back to InvalidArgument / IOError on malformed input.
  static StatusOr<BlockedIndex> LoadFromFile(const PairPredicate& pred,
                                             size_t record_count,
                                             const std::string& path);

 private:
  struct ListMeta {
    uint64_t blob_begin = 0;   // Absolute offset of the list in the blob.
    uint32_t first_block = 0;  // Index of the list's first BlockMeta.
    uint32_t count = 0;        // Postings in the list.
  };
  struct BlockMeta {
    uint32_t last_pos = 0;      // Largest internal position in the block.
    uint32_t blob_end_rel = 0;  // End of block bytes, relative to the list.
    uint32_t min_sig = 0;       // Smallest member signature size.
    uint32_t max_sig = 0;       // Largest member signature size.
    uint32_t count = 0;         // Postings in the block (<= kBlockSize).
    uint32_t min_rank = 0;      // Smallest member token rank (prefix filter).
  };
  static_assert(sizeof(ListMeta) == 16, "serialized layout");
  static_assert(sizeof(BlockMeta) == 24, "serialized layout");

  BlockedIndex() = default;

  void BuildFrom(const PairPredicate& pred, std::vector<size_t> items);
  /// Points the section views at `body` (which must stay alive); assumes
  /// the section extents were already validated.
  void BindViews(const uint8_t* body, size_t body_size);
  Status Validate(size_t record_count) const;

  void ForEachCandidateImpl(size_t pos, QueryScratch* scratch,
                            FunctionRef<bool(size_t)> fn) const;
  void ForEachCandidatePairInRangeImpl(
      size_t begin, size_t end, QueryScratch* scratch,
      FunctionRef<void(size_t, size_t)> fn) const;

  /// Rebuilds the scratch threshold table for query signature size `s`.
  void EnsureThresholds(size_t s, QueryScratch* scratch) const;
  /// Number of blocks of the list for token `t`, derived from the next
  /// list's first block (blocks are laid out contiguously, list by list).
  uint32_t ListBlockCount(size_t t) const {
    const uint32_t next = t + 1 < token_count_
                              ? lists_[t + 1].first_block
                              : static_cast<uint32_t>(block_count_);
    return next - lists_[t].first_block;
  }
  /// Decodes block `block_id` of the list at `list` into `out` (capacity
  /// >= kBlockSize), stopping at the first posting whose token rank
  /// exceeds `rank_limit` (pass UINT32_MAX for a full decode; pairs are
  /// stored in ascending rank order). Returns the number of decoded
  /// postings; defensive against malformed bytes (never reads outside the
  /// block's extent, never returns positions >= item_count()).
  size_t DecodeBlock(const ListMeta& list, uint32_t block_id,
                     uint32_t rank_limit, uint32_t* out) const;

  const PairPredicate* pred_ = nullptr;

  /// Body storage: exactly one of owned_ (built or Deserialize) and
  /// mapping_ (LoadFromFile) is active; the views below point into it.
  std::vector<uint8_t> owned_;
  struct Mapping;
  std::shared_ptr<Mapping> mapping_;

  /// Lazily filled candidate lists, present only after EnableCandidateMemo.
  struct MemoState;
  std::unique_ptr<MemoState> memo_;

  // Section views over the body.
  const uint64_t* items_ = nullptr;      // [n] external pos -> record id.
  const uint32_t* rank_ = nullptr;       // [n] external -> internal.
  const uint32_t* order_ = nullptr;      // [n] internal -> external.
  const uint32_t* sig_size_ = nullptr;   // [n] internal pos -> |signature|.
  const uint32_t* distinct_sizes_ = nullptr;  // [d], sorted ascending.
  const ListMeta* lists_ = nullptr;      // [token_count].
  const BlockMeta* blocks_ = nullptr;    // [block_count].
  const uint8_t* blob_ = nullptr;
  size_t blob_size_ = 0;

  size_t n_ = 0;
  size_t token_count_ = 0;
  size_t distinct_size_count_ = 0;
  size_t block_count_ = 0;
  uint64_t posting_count_ = 0;
  uint32_t max_sig_size_ = 0;
};

}  // namespace topkdup::predicates

#endif  // TOPKDUP_PREDICATES_BLOCKED_INDEX_H_
