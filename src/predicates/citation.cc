#include "predicates/citation.h"

#include <algorithm>
#include <limits>

#include "predicates/generic.h"
#include "text/tokenize.h"

namespace topkdup::predicates {

CitationS1::CitationS1(const Corpus* corpus, CitationFields fields,
                       double min_idf_threshold)
    : corpus_(corpus),
      fields_(fields),
      min_idf_threshold_(min_idf_threshold) {
  const size_t n = corpus_->size();
  signatures_.resize(n);
  min_idf_.resize(n);
  const text::IdfTable& idf = corpus_->FieldIdf(fields_.author);
  for (size_t r = 0; r < n; ++r) {
    // Non-initial author words: words of length > 1.
    std::vector<text::TokenId> words;
    double min_idf = std::numeric_limits<double>::infinity();
    for (const std::string& w :
         text::WordTokens(corpus_->data()[r].field(fields_.author))) {
      if (w.size() <= 1) continue;
      const text::TokenId id = corpus_->vocab().Find(w);
      if (id == text::kInvalidToken) continue;  // Cannot happen post-Build.
      words.push_back(id);
      min_idf = std::min(min_idf, idf.Idf(id));
    }
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    signatures_[r] = std::move(words);
    min_idf_[r] = min_idf;
  }
}

int CitationS1::MinCommon(size_t size_a, size_t size_b) const {
  // Equal word sets share max(|a|, |b|) tokens.
  return std::max<int>(1, static_cast<int>(std::max(size_a, size_b)));
}

bool CitationS1::Evaluate(size_t a, size_t b) const {
  if (signatures_[a].empty() || signatures_[a] != signatures_[b]) {
    return false;
  }
  if (corpus_->InitialsOf(a, fields_.author) !=
      corpus_->InitialsOf(b, fields_.author)) {
    return false;
  }
  return min_idf_[a] >= min_idf_threshold_ &&
         min_idf_[b] >= min_idf_threshold_;
}

CitationS2::CitationS2(const Corpus* corpus, CitationFields fields)
    : corpus_(corpus), fields_(fields) {
  const size_t n = corpus_->size();
  signatures_.resize(n);
  last_names_.resize(n);
  for (size_t r = 0; r < n; ++r) {
    const std::vector<std::string> words =
        text::WordTokens(corpus_->data()[r].field(fields_.author));
    if (!words.empty()) last_names_[r] = words.back();
    std::string key = last_names_[r];
    key.push_back('\x1f');
    key.append(corpus_->InitialsOf(r, fields_.author));
    signatures_[r].push_back(key_vocab_.GetOrAdd(key));
  }
}

bool CitationS2::Evaluate(size_t a, size_t b) const {
  if (last_names_[a].empty()) return false;
  if (last_names_[a] != last_names_[b]) return false;
  if (corpus_->InitialsOf(a, fields_.author) !=
      corpus_->InitialsOf(b, fields_.author)) {
    return false;
  }
  const int common_coauthors = text::SortedIntersectionSize(
      corpus_->WordSet(a, fields_.coauthors),
      corpus_->WordSet(b, fields_.coauthors));
  return common_coauthors >= 3;
}

}  // namespace topkdup::predicates
