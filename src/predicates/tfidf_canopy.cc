#include "predicates/tfidf_canopy.h"

#include "common/check.h"
#include "sim/similarity.h"

namespace topkdup::predicates {

TfIdfCanopyPredicate::TfIdfCanopyPredicate(const Corpus* corpus, int field,
                                           double min_cosine)
    : corpus_(corpus), field_(field), min_cosine_(min_cosine) {
  TOPKDUP_CHECK(min_cosine > 0.0 && min_cosine <= 1.0);
}

bool TfIdfCanopyPredicate::Evaluate(size_t a, size_t b) const {
  return sim::CosineTfIdf(corpus_->WordSet(a, field_),
                          corpus_->WordSet(b, field_),
                          corpus_->FieldIdf(field_)) >= min_cosine_;
}

}  // namespace topkdup::predicates
