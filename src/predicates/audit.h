#ifndef TOPKDUP_PREDICATES_AUDIT_H_
#define TOPKDUP_PREDICATES_AUDIT_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "predicates/pair_predicate.h"
#include "record/record.h"

namespace topkdup::predicates {

/// Empirical audit of a predicate against labeled data — the measurement
/// half of the paper's future work on "automatically choosing the
/// necessary and sufficient predicates" and ordering them "based on
/// selectivity and running time" (§8). The paper itself validated its
/// hand-picked predicates on labeled samples (§6.1); this makes that step
/// a library operation.
struct PredicateAudit {
  std::string name;

  /// Necessary-predicate quality: fraction of sampled true-duplicate
  /// pairs on which the predicate is FALSE. Must be ~0 for the predicate
  /// to be usable as necessary.
  size_t duplicate_pairs_checked = 0;
  size_t necessary_violations = 0;

  /// Sufficient-predicate quality: fraction of sampled cross-entity
  /// candidate pairs on which the predicate is TRUE. Must be ~0 for the
  /// predicate to be usable as sufficient.
  size_t cross_pairs_checked = 0;
  size_t sufficient_violations = 0;

  /// Blocking selectivity: candidate pairs surfaced by the predicate's
  /// own blocking on a sample, divided by all pairs of the sample.
  double blocking_selectivity = 0.0;

  /// Mean wall seconds per Evaluate call on the sampled pairs.
  double seconds_per_eval = 0.0;

  double NecessaryViolationRate() const {
    return duplicate_pairs_checked == 0
               ? 0.0
               : static_cast<double>(necessary_violations) /
                     static_cast<double>(duplicate_pairs_checked);
  }
  double SufficientViolationRate() const {
    return cross_pairs_checked == 0
               ? 0.0
               : static_cast<double>(sufficient_violations) /
                     static_cast<double>(cross_pairs_checked);
  }
};

struct AuditOptions {
  /// Sample caps (entities for duplicate pairs; items for blocking).
  size_t max_duplicate_pairs = 5000;
  size_t max_cross_pairs = 5000;
  size_t blocking_sample = 2000;
  uint64_t seed = 97;
};

/// Audits `pred` on `data`, whose records must carry ground-truth
/// entity_ids (>= 0). Duplicate pairs are sampled within entities;
/// cross-entity pairs are sampled from the predicate's own blocking
/// candidates (random cross pairs almost never collide, so blocked pairs
/// are the informative ones).
StatusOr<PredicateAudit> AuditPredicate(const record::Dataset& data,
                                        const PairPredicate& pred,
                                        const AuditOptions& options = {});

/// Orders predicate audits for use as pruning levels: cheapest and most
/// selective first, as §8 sketches. The score is seconds_per_eval weighted
/// by blocking selectivity (expected join work per record pair).
std::vector<size_t> SuggestLevelOrder(
    const std::vector<PredicateAudit>& audits);

}  // namespace topkdup::predicates

#endif  // TOPKDUP_PREDICATES_AUDIT_H_
