#include "predicates/address.h"

#include <algorithm>
#include <cmath>

#include "sim/name_similarity.h"
#include "text/tokenize.h"

namespace topkdup::predicates {

AddressS1::AddressS1(const Corpus* corpus, AddressFields fields,
                     double min_name_overlap, double min_address_overlap)
    : corpus_(corpus),
      fields_(fields),
      min_name_overlap_(min_name_overlap),
      min_address_overlap_(min_address_overlap) {}

const std::vector<text::TokenId>& AddressS1::Signature(size_t rec) const {
  return corpus_->NonStopWordSet(rec, fields_.name);
}

int AddressS1::MinCommon(size_t size_a, size_t size_b) const {
  const size_t smaller = std::min(size_a, size_b);
  return std::max(1, static_cast<int>(std::ceil(
                         min_name_overlap_ * static_cast<double>(smaller))));
}

bool AddressS1::Evaluate(size_t a, size_t b) const {
  if (corpus_->InitialsOf(a, fields_.name) !=
      corpus_->InitialsOf(b, fields_.name)) {
    return false;
  }
  const auto& na = corpus_->NonStopWordSet(a, fields_.name);
  const auto& nb = corpus_->NonStopWordSet(b, fields_.name);
  if (na.empty() || nb.empty()) return false;
  const int name_common = text::SortedIntersectionSize(na, nb);
  const double name_frac =
      static_cast<double>(name_common) /
      static_cast<double>(std::min(na.size(), nb.size()));
  if (name_frac <= min_name_overlap_) return false;  // Strictly greater.

  const auto& aa = corpus_->NonStopWordSet(a, fields_.address);
  const auto& ab = corpus_->NonStopWordSet(b, fields_.address);
  if (aa.empty() || ab.empty()) return false;
  const int addr_common = text::SortedIntersectionSize(aa, ab);
  const double addr_frac =
      static_cast<double>(addr_common) /
      static_cast<double>(std::min(aa.size(), ab.size()));
  return addr_frac >= min_address_overlap_;
}

AddressN1::AddressN1(const Corpus* corpus, AddressFields fields,
                     int min_common)
    : min_common_(min_common) {
  signatures_.resize(corpus->size());
  for (size_t r = 0; r < corpus->size(); ++r) {
    std::vector<text::TokenId> all = corpus->NonStopWordSet(r, fields.name);
    const auto& addr = corpus->NonStopWordSet(r, fields.address);
    all.insert(all.end(), addr.begin(), addr.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    signatures_[r] = std::move(all);
  }
}

bool AddressN1::Evaluate(size_t a, size_t b) const {
  return text::SortedIntersectionSize(signatures_[a], signatures_[b]) >=
         min_common_;
}

}  // namespace topkdup::predicates
