#ifndef TOPKDUP_PREDICATES_TFIDF_CANOPY_H_
#define TOPKDUP_PREDICATES_TFIDF_CANOPY_H_

#include <vector>

#include "predicates/corpus.h"
#include "predicates/pair_predicate.h"

namespace topkdup::predicates {

/// The classic TF-IDF canopy (McCallum et al., cited by the paper as the
/// standard cheap filter, §3): true when the TF-IDF cosine similarity of a
/// field's word sets reaches `min_cosine`. Usable as a necessary predicate
/// whenever the final criterion implies at least that much weighted
/// lexical overlap.
///
/// Blocking: the word-token set with MinCommon = 1 — a pair with positive
/// cosine must share a word, so the blocking is conservative for any
/// threshold. (Weighted prefix filtering would shrink posting lists
/// further; it is intentionally left out to keep the blocking obviously
/// correct.)
class TfIdfCanopyPredicate : public PairPredicate {
 public:
  TfIdfCanopyPredicate(const Corpus* corpus, int field, double min_cosine);

  std::string_view name() const override { return "TfIdfCanopy"; }
  bool Evaluate(size_t a, size_t b) const override;
  const std::vector<text::TokenId>& Signature(size_t rec) const override {
    return corpus_->WordSet(rec, field_);
  }

 private:
  const Corpus* corpus_;
  int field_;
  double min_cosine_;
};

}  // namespace topkdup::predicates

#endif  // TOPKDUP_PREDICATES_TFIDF_CANOPY_H_
