#ifndef TOPKDUP_PREDICATES_CITATION_H_
#define TOPKDUP_PREDICATES_CITATION_H_

#include <string>
#include <vector>

#include "predicates/corpus.h"
#include "predicates/pair_predicate.h"

namespace topkdup::predicates {

/// Field layout of the citation dataset (author-citation pair records,
/// paper §6.1.1).
struct CitationFields {
  int author = 0;
  int coauthors = 1;
  int title = 2;
};

/// Sufficient predicate S1 of §6.1.1: "author initials match and the
/// minimum IDF over two author words is at least <threshold>" — the name
/// has to be sufficiently rare and the initials must match exactly. We
/// additionally require equal non-initial author word sets, which is the
/// reading under which the predicate is genuinely sufficient (matching
/// initials alone never identify a person).
class CitationS1 : public PairPredicate {
 public:
  CitationS1(const Corpus* corpus, CitationFields fields,
             double min_idf_threshold);

  std::string_view name() const override { return "Citation-S1"; }
  bool Evaluate(size_t a, size_t b) const override;
  const std::vector<text::TokenId>& Signature(size_t rec) const override {
    return signatures_[rec];
  }
  int MinCommon(size_t size_a, size_t size_b) const override;

 private:
  const Corpus* corpus_;
  CitationFields fields_;
  double min_idf_threshold_;
  // Non-initial author-word id sets (sorted); corpus vocab ids.
  std::vector<std::vector<text::TokenId>> signatures_;
  // Minimum IDF over the record's non-initial author words.
  std::vector<double> min_idf_;
};

/// Sufficient predicate S2 of §6.1.1: initials match exactly, last names
/// match, and at least three common co-author words.
class CitationS2 : public PairPredicate {
 public:
  CitationS2(const Corpus* corpus, CitationFields fields);

  std::string_view name() const override { return "Citation-S2"; }
  bool Evaluate(size_t a, size_t b) const override;
  const std::vector<text::TokenId>& Signature(size_t rec) const override {
    return signatures_[rec];
  }

 private:
  const Corpus* corpus_;
  CitationFields fields_;
  // One composite token per record: lastname|initials.
  text::Vocabulary key_vocab_;
  std::vector<std::vector<text::TokenId>> signatures_;
  std::vector<std::string> last_names_;
};

/// Necessary predicate N1 of §6.1.1: common author 3-grams are at least 60%
/// of the smaller 3-gram set. N2 additionally requires one common initial.
/// Both are instances of QGramOverlapPredicate; factory helpers below keep
/// the dataset parameters in one place.
struct CitationPredicateConfig {
  CitationFields fields;
  double s1_min_idf = 13.0;
  double n_overlap_fraction = 0.6;
};

}  // namespace topkdup::predicates

#endif  // TOPKDUP_PREDICATES_CITATION_H_
