#ifndef TOPKDUP_PREDICATES_PAIR_PREDICATE_H_
#define TOPKDUP_PREDICATES_PAIR_PREDICATE_H_

#include <string_view>
#include <vector>

#include "text/vocab.h"

namespace topkdup::predicates {

/// A cheap binary predicate over record pairs, identified by record index
/// into the pipeline's Corpus.
///
/// A *necessary* predicate must be true for every true-duplicate pair; a
/// *sufficient* predicate must be false for every non-duplicate pair
/// (paper §4). The class itself does not know which role it plays — the
/// PrunedDedup pipeline assigns roles — but implementations must honor the
/// contract of the role they are used in.
///
/// Every predicate also defines its own *blocking scheme*: a signature
/// token set per record plus a lower bound on the number of signature
/// tokens any satisfying pair must share. The pipeline only ever evaluates
/// the predicate on candidate pairs produced by an inverted index over
/// these signatures, so the blocking must be conservative:
///
///   Evaluate(a, b) == true  implies
///   |Signature(a) ∩ Signature(b)| >= MinCommon(|Signature(a)|, |Signature(b)|)
class PairPredicate {
 public:
  virtual ~PairPredicate() = default;

  virtual std::string_view name() const = 0;

  /// Exact predicate decision for records `a` and `b`.
  virtual bool Evaluate(size_t a, size_t b) const = 0;

  /// Sorted blocking-signature token set of record `rec`. The reference
  /// must stay valid for the lifetime of the predicate.
  virtual const std::vector<text::TokenId>& Signature(size_t rec) const = 0;

  /// Minimum number of common signature tokens of any pair satisfying the
  /// predicate, given the two signature sizes. Must be >= 1 (a pair with
  /// disjoint signatures is never a candidate).
  virtual int MinCommon(size_t size_a, size_t size_b) const { return 1; }
};

}  // namespace topkdup::predicates

#endif  // TOPKDUP_PREDICATES_PAIR_PREDICATE_H_
