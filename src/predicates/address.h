#ifndef TOPKDUP_PREDICATES_ADDRESS_H_
#define TOPKDUP_PREDICATES_ADDRESS_H_

#include <string>
#include <vector>

#include "predicates/corpus.h"
#include "predicates/pair_predicate.h"

namespace topkdup::predicates {

/// Field layout of the address dataset (paper §6.1.3).
struct AddressFields {
  int name = 0;
  int address = 1;
  int pin = 2;
};

/// Sufficient predicate S1 (§6.1.3): name initials match exactly, the
/// fraction of common non-stop name words is > 0.7, and the fraction of
/// matching non-stop address words is >= 0.6 (fractions relative to the
/// smaller set). Blocks on non-stop name words.
class AddressS1 : public PairPredicate {
 public:
  AddressS1(const Corpus* corpus, AddressFields fields,
            double min_name_overlap = 0.7, double min_address_overlap = 0.6);

  std::string_view name() const override { return "Address-S1"; }
  bool Evaluate(size_t a, size_t b) const override;
  const std::vector<text::TokenId>& Signature(size_t rec) const override;
  int MinCommon(size_t size_a, size_t size_b) const override;

 private:
  const Corpus* corpus_;
  AddressFields fields_;
  double min_name_overlap_;
  double min_address_overlap_;
};

/// Necessary predicate N1 (§6.1.3): at least `min_common` (default 4)
/// common non-stop words in the concatenation of name and address.
/// This is CommonWordsPredicate specialized to the paper's field pair; the
/// alias keeps bench/test code close to the paper's terminology.
class AddressN1 : public PairPredicate {
 public:
  AddressN1(const Corpus* corpus, AddressFields fields, int min_common = 4);

  std::string_view name() const override { return "Address-N1"; }
  bool Evaluate(size_t a, size_t b) const override;
  const std::vector<text::TokenId>& Signature(size_t rec) const override {
    return signatures_[rec];
  }
  int MinCommon(size_t size_a, size_t size_b) const override {
    return min_common_;
  }

 private:
  int min_common_;
  std::vector<std::vector<text::TokenId>> signatures_;
};

}  // namespace topkdup::predicates

#endif  // TOPKDUP_PREDICATES_ADDRESS_H_
