#ifndef TOPKDUP_PREDICATES_STUDENT_H_
#define TOPKDUP_PREDICATES_STUDENT_H_

#include <string>
#include <vector>

#include "predicates/corpus.h"
#include "predicates/pair_predicate.h"

namespace topkdup::predicates {

/// Field layout of the student exam dataset (paper §6.1.2).
struct StudentFields {
  int name = 0;
  int birth_date = 1;
  int class_code = 2;
  int school_code = 3;
  int paper_code = 4;
};

/// Sufficient predicate S1 (§6.1.2): name, class, school code and birth
/// date all match exactly.
/// Implemented directly on a composite key (see ExactFieldsPredicate for the
/// generic form; this one fixes the field set of the paper).
class StudentS1 : public PairPredicate {
 public:
  StudentS1(const Corpus* corpus, StudentFields fields);

  std::string_view name() const override { return "Student-S1"; }
  bool Evaluate(size_t a, size_t b) const override;
  const std::vector<text::TokenId>& Signature(size_t rec) const override {
    return signatures_[rec];
  }

 private:
  text::Vocabulary key_vocab_;
  std::vector<std::vector<text::TokenId>> signatures_;
};

/// Sufficient predicate S2 (§6.1.2): like S1 but instead of exact name
/// match it requires >= 90% overlap in the 3-grams of the name field
/// (relative to the smaller gram set). Blocks on class|school|birth.
class StudentS2 : public PairPredicate {
 public:
  StudentS2(const Corpus* corpus, StudentFields fields,
            double min_name_gram_overlap = 0.9);

  std::string_view name() const override { return "Student-S2"; }
  bool Evaluate(size_t a, size_t b) const override;
  const std::vector<text::TokenId>& Signature(size_t rec) const override {
    return signatures_[rec];
  }

 private:
  const Corpus* corpus_;
  StudentFields fields_;
  double min_name_gram_overlap_;
  text::Vocabulary key_vocab_;
  std::vector<std::vector<text::TokenId>> signatures_;
};

/// Necessary predicate N1 (§6.1.2): at least one common initial in the
/// name, and class and school code match exactly. The signature is one
/// composite token per distinct name initial: class|school|initial.
class StudentN1 : public PairPredicate {
 public:
  StudentN1(const Corpus* corpus, StudentFields fields);

  std::string_view name() const override { return "Student-N1"; }
  bool Evaluate(size_t a, size_t b) const override;
  const std::vector<text::TokenId>& Signature(size_t rec) const override {
    return signatures_[rec];
  }

 private:
  const Corpus* corpus_;
  StudentFields fields_;
  text::Vocabulary key_vocab_;
  std::vector<std::vector<text::TokenId>> signatures_;
};

/// Necessary predicate N2 (§6.1.2): at least 50% common 3-grams of the
/// name field (relative to the smaller set) and school and class match
/// exactly. Signature: one composite token per name 3-gram,
/// class|school|gram, so common signature tokens equal common name grams
/// whenever class and school agree.
class StudentN2 : public PairPredicate {
 public:
  StudentN2(const Corpus* corpus, StudentFields fields,
            double min_gram_fraction = 0.5);

  std::string_view name() const override { return "Student-N2"; }
  bool Evaluate(size_t a, size_t b) const override;
  const std::vector<text::TokenId>& Signature(size_t rec) const override {
    return signatures_[rec];
  }
  int MinCommon(size_t size_a, size_t size_b) const override;

 private:
  const Corpus* corpus_;
  StudentFields fields_;
  double min_gram_fraction_;
  text::Vocabulary key_vocab_;
  std::vector<std::vector<text::TokenId>> signatures_;
};

}  // namespace topkdup::predicates

#endif  // TOPKDUP_PREDICATES_STUDENT_H_
