#include "predicates/blocked_index.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/crc32.h"
#include "common/metrics.h"

namespace topkdup::predicates {

namespace {

/// Blocking-probe instrumentation (paper Figures 2-4 are all about how few
/// candidates survive blocking). `postings_scanned` keeps its historical
/// meaning — the summed length of the query's posting lists, i.e. the work
/// an uncompressed scan would do — while `postings_decoded` /
/// `blocks_decoded` / `blocks_skipped` measure what the block-skip
/// enumeration actually paid. Counts are accumulated in query-local
/// variables and flushed once per query, so the postings loops stay tight.
struct ProbeCounters {
  metrics::Counter* queries;
  metrics::Counter* postings_scanned;
  metrics::Counter* candidates;
  metrics::Counter* blocks_skipped;
  metrics::Counter* blocks_decoded;
  metrics::Counter* postings_decoded;

  static const ProbeCounters& Get() {
    static const ProbeCounters counters = {
        metrics::Registry::Global().GetCounter(
            "predicates.blocked_index.queries"),
        metrics::Registry::Global().GetCounter(
            "predicates.blocked_index.postings_scanned"),
        metrics::Registry::Global().GetCounter(
            "predicates.blocked_index.candidates"),
        metrics::Registry::Global().GetCounter(
            "predicates.blocked_index.blocks_skipped"),
        metrics::Registry::Global().GetCounter(
            "predicates.blocked_index.blocks_decoded"),
        metrics::Registry::Global().GetCounter(
            "predicates.blocked_index.postings_decoded"),
    };
    return counters;
  }
};

constexpr int kInadmissible = std::numeric_limits<int>::max();

constexpr uint64_t kMagic = 0x3158444950444b54ull;  // "TKDPIDX1"
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderSize = 96;

/// On-disk header (host little-endian). The trailing CRC covers the first
/// 92 bytes; body_crc32 covers the body that follows the header.
struct IndexHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t header_size;
  uint64_t n;
  uint64_t token_count;
  uint64_t distinct_size_count;
  uint64_t block_count;
  uint64_t blob_bytes;
  uint64_t posting_count;
  uint32_t max_sig_size;
  uint32_t flags;
  uint64_t body_size;
  uint64_t pred_name_hash;
  uint32_t body_crc32;
  uint32_t header_crc32;
};
static_assert(sizeof(IndexHeader) == kHeaderSize, "serialized layout");

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

size_t Align8(size_t offset) { return (offset + 7) & ~size_t{7}; }

/// Byte offsets of each body section; total is the body size. All sections
/// are 8-aligned so the views can be typed directly over the buffer.
struct Layout {
  size_t items;
  size_t rank;
  size_t order;
  size_t sig_size;
  size_t distinct;
  size_t lists;
  size_t blocks;
  size_t blob;
  size_t total;
};

void AppendVarint(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80u) {
    out->push_back(static_cast<uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

}  // namespace

/// Holds the backing bytes of a deserialized index: either an adopted
/// in-memory image or a read-only file mapping. Boxed on the heap so the
/// index can move without invalidating the views.
struct BlockedIndex::Mapping {
  std::string bytes;
  void* addr = nullptr;
  size_t size = 0;
  ~Mapping() {
    if (addr != nullptr) ::munmap(addr, size);
  }
};

namespace {

Layout ComputeLayout(uint64_t n, uint64_t token_count, uint64_t distinct,
                     uint64_t block_count, uint64_t blob_bytes) {
  Layout lay{};
  size_t off = 0;
  lay.items = off;
  off = Align8(off + n * sizeof(uint64_t));
  lay.rank = off;
  off = Align8(off + n * sizeof(uint32_t));
  lay.order = off;
  off = Align8(off + n * sizeof(uint32_t));
  lay.sig_size = off;
  off = Align8(off + n * sizeof(uint32_t));
  lay.distinct = off;
  off = Align8(off + distinct * sizeof(uint32_t));
  lay.lists = off;
  off = Align8(off + token_count * 16);  // sizeof(ListMeta)
  lay.blocks = off;
  off = Align8(off + block_count * 24);  // sizeof(BlockMeta)
  lay.blob = off;
  off = Align8(off + blob_bytes);
  lay.total = off;
  return lay;
}

}  // namespace

/// Per-item memoized candidate lists (EnableCandidateMemo). Each slot is
/// published at most once with the item's full candidate list in
/// enumeration order; because enumeration is deterministic, racing fills
/// produce identical lists and the CAS loser simply discards its copy.
struct BlockedIndex::MemoState {
  std::vector<std::atomic<const std::vector<uint32_t>*>> slots;
  explicit MemoState(size_t n) : slots(n) {
    for (auto& slot : slots) slot.store(nullptr, std::memory_order_relaxed);
  }
  ~MemoState() {
    for (auto& slot : slots) delete slot.load(std::memory_order_relaxed);
  }
};

BlockedIndex::BlockedIndex(const PairPredicate& pred,
                           std::vector<size_t> items) {
  BuildFrom(pred, std::move(items));
}

BlockedIndex::BlockedIndex(BlockedIndex&&) noexcept = default;
BlockedIndex& BlockedIndex::operator=(BlockedIndex&&) noexcept = default;
BlockedIndex::~BlockedIndex() = default;

void BlockedIndex::EnableCandidateMemo() {
  if (memo_ == nullptr) memo_ = std::make_unique<MemoState>(n_);
}

void BlockedIndex::BuildFrom(const PairPredicate& pred,
                             std::vector<size_t> items) {
  pred_ = &pred;
  const size_t n = items.size();
  n_ = n;

  std::vector<const std::vector<text::TokenId>*> sigs(n);
  for (size_t i = 0; i < n; ++i) sigs[i] = &pred.Signature(items[i]);

  // Document reordering. Primary key: signature SIZE, so every size class
  // is a contiguous internal position range and the per-class enumeration
  // can restrict a posting list to its class segment by block binary
  // search. Secondary key: the signature itself, which clusters similar
  // items inside a class and keeps posting-list deltas small. The tie on
  // the original position keeps the permutation deterministic.
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const std::vector<text::TokenId>& sa = *sigs[a];
    const std::vector<text::TokenId>& sb = *sigs[b];
    if (sa.size() != sb.size()) return sa.size() < sb.size();
    if (sa < sb) return true;
    if (sb < sa) return false;
    return a < b;
  });
  std::vector<uint32_t> rank(n);
  for (size_t ip = 0; ip < n; ++ip) rank[order[ip]] = static_cast<uint32_t>(ip);

  std::vector<uint32_t> sig_size(n);
  max_sig_size_ = 0;
  size_t token_count = 0;
  for (size_t ip = 0; ip < n; ++ip) {
    const std::vector<text::TokenId>& sig = *sigs[order[ip]];
    sig_size[ip] = static_cast<uint32_t>(sig.size());
    max_sig_size_ = std::max(max_sig_size_, sig_size[ip]);
    for (text::TokenId t : sig) {
      if (t >= 0 && static_cast<size_t>(t) + 1 > token_count) {
        token_count = static_cast<size_t>(t) + 1;
      }
    }
  }
  token_count_ = token_count;

  std::vector<uint32_t> distinct(sig_size);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  distinct_size_count_ = distinct.size();

  // Postings carry the token's rank — its index within the owning item's
  // signature. The positional prefix filter keys off it: a class-z
  // candidate matched with threshold thr through its FIRST common token
  // holds that token at rank <= z - thr (see the enumeration below).
  std::vector<std::vector<uint32_t>> postings(token_count);
  std::vector<std::vector<uint32_t>> post_ranks(token_count);
  posting_count_ = 0;
  for (size_t ip = 0; ip < n; ++ip) {
    const std::vector<text::TokenId>& sig = *sigs[order[ip]];
    text::TokenId prev_t = text::kInvalidToken;
    for (size_t idx = 0; idx < sig.size(); ++idx) {
      const text::TokenId t = sig[idx];
      if (t < 0 || t == prev_t) continue;  // Contract: sorted unique.
      prev_t = t;
      postings[t].push_back(static_cast<uint32_t>(ip));
      post_ranks[t].push_back(static_cast<uint32_t>(idx));
      ++posting_count_;
    }
  }

  std::vector<ListMeta> lists(token_count);
  std::vector<BlockMeta> blocks;
  std::vector<uint8_t> blob;
  std::vector<uint32_t> group;  // Posting indices of one class segment.
  for (size_t t = 0; t < token_count; ++t) {
    const std::vector<uint32_t>& plist = postings[t];
    const std::vector<uint32_t>& ranks = post_ranks[t];
    ListMeta& lm = lists[t];
    lm.blob_begin = blob.size();
    lm.first_block = static_cast<uint32_t>(blocks.size());
    lm.count = static_cast<uint32_t>(plist.size());
    // Blocks never span a signature-size class boundary (positions arrive
    // class-grouped because items are ordered by size), so the per-class
    // enumeration decodes exactly the class's segment of each list. Within
    // a class segment the postings are stratified by token rank — sorted
    // by (rank, position) and carved into blocks in that order — and each
    // posting is stored as a (rank delta, position) varint pair: a rank
    // step > 0 carries the position verbatim, a step of 0 carries the
    // delta to the previous position (ascending within a rank run). The
    // decoder can therefore stop mid-block the moment the running rank
    // passes the prefix-filter bound z - thr, and whole blocks whose
    // min_rank already exceeds it are never touched.
    size_t seg_begin = 0;
    while (seg_begin < plist.size()) {
      const uint32_t block_sig = sig_size[plist[seg_begin]];
      size_t seg_end = seg_begin;
      while (seg_end < plist.size() &&
             sig_size[plist[seg_end]] == block_sig) {
        ++seg_end;
      }
      group.clear();
      for (size_t i = seg_begin; i < seg_end; ++i) {
        group.push_back(static_cast<uint32_t>(i));
      }
      std::sort(group.begin(), group.end(), [&](uint32_t a, uint32_t b) {
        if (ranks[a] != ranks[b]) return ranks[a] < ranks[b];
        return plist[a] < plist[b];
      });
      size_t begin = 0;
      while (begin < group.size()) {
        const size_t end = std::min(begin + kBlockSize, group.size());
        BlockMeta bm;
        bm.count = static_cast<uint32_t>(end - begin);
        bm.min_sig = block_sig;
        bm.max_sig = block_sig;
        bm.min_rank = ranks[group[begin]];  // Rank-ascending carve order.
        uint32_t prev_rank = bm.min_rank;
        uint32_t prev_pos = 0;
        uint32_t max_pos = 0;
        for (size_t i = begin; i < end; ++i) {
          const uint32_t v = plist[group[i]];
          const uint32_t r = ranks[group[i]];
          AppendVarint(&blob, r - prev_rank);
          AppendVarint(&blob, r == prev_rank ? v - prev_pos : v);
          prev_rank = r;
          prev_pos = v;
          max_pos = std::max(max_pos, v);
        }
        bm.last_pos = max_pos;
        bm.blob_end_rel = static_cast<uint32_t>(blob.size() - lm.blob_begin);
        blocks.push_back(bm);
        begin = end;
      }
      seg_begin = seg_end;
    }
  }
  block_count_ = blocks.size();
  blob_size_ = blob.size();

  const Layout lay = ComputeLayout(n, token_count, distinct.size(),
                                   blocks.size(), blob.size());
  owned_.assign(lay.total, 0);
  uint8_t* body = owned_.data();
  uint64_t* items64 = reinterpret_cast<uint64_t*>(body + lay.items);
  for (size_t i = 0; i < n; ++i) items64[i] = items[i];
  if (n > 0) {
    std::memcpy(body + lay.rank, rank.data(), n * sizeof(uint32_t));
    std::memcpy(body + lay.order, order.data(), n * sizeof(uint32_t));
    std::memcpy(body + lay.sig_size, sig_size.data(), n * sizeof(uint32_t));
  }
  if (!distinct.empty()) {
    std::memcpy(body + lay.distinct, distinct.data(),
                distinct.size() * sizeof(uint32_t));
  }
  if (!lists.empty()) {
    std::memcpy(body + lay.lists, lists.data(),
                lists.size() * sizeof(ListMeta));
  }
  if (!blocks.empty()) {
    std::memcpy(body + lay.blocks, blocks.data(),
                blocks.size() * sizeof(BlockMeta));
  }
  if (!blob.empty()) {
    std::memcpy(body + lay.blob, blob.data(), blob.size());
  }
  BindViews(body, lay.total);
}

void BlockedIndex::BindViews(const uint8_t* body, size_t body_size) {
  const Layout lay = ComputeLayout(n_, token_count_, distinct_size_count_,
                                   block_count_, blob_size_);
  (void)body_size;
  items_ = reinterpret_cast<const uint64_t*>(body + lay.items);
  rank_ = reinterpret_cast<const uint32_t*>(body + lay.rank);
  order_ = reinterpret_cast<const uint32_t*>(body + lay.order);
  sig_size_ = reinterpret_cast<const uint32_t*>(body + lay.sig_size);
  distinct_sizes_ = reinterpret_cast<const uint32_t*>(body + lay.distinct);
  lists_ = reinterpret_cast<const ListMeta*>(body + lay.lists);
  blocks_ = reinterpret_cast<const BlockMeta*>(body + lay.blocks);
  blob_ = body + lay.blob;
}

// ---------------------------------------------------------------------------
// Enumeration.

void BlockedIndex::EnsureThresholds(size_t s, QueryScratch* scratch) const {
  if (scratch->cached_pred == this && scratch->cached_sig_size == s) return;
  scratch->cached_pred = this;
  scratch->cached_sig_size = s;
  scratch->thresholds.assign(max_sig_size_ + 1, kInadmissible);
  scratch->admissible_sizes.clear();
  int tmin = kInadmissible;
  for (size_t i = 0; i < distinct_size_count_; ++i) {
    const uint32_t z = distinct_sizes_[i];
    if (z == 0) continue;  // Empty signatures never share a token.
    int thr = pred_->MinCommon(s, z);
    if (thr < 1) thr = 1;
    // A size-z candidate shares at most min(s, z) tokens with the query;
    // sizes whose threshold exceeds that can never qualify.
    if (static_cast<uint64_t>(thr) >
        std::min<uint64_t>(s, z)) {
      continue;
    }
    scratch->thresholds[z] = thr;
    scratch->admissible_sizes.push_back(z);
    tmin = std::min(tmin, thr);
  }
  scratch->min_threshold = tmin;
}

size_t BlockedIndex::DecodeBlock(const ListMeta& list, uint32_t block_id,
                                 uint32_t rank_limit, uint32_t* out) const {
  const BlockMeta& bm = blocks_[list.first_block + block_id];
  const size_t begin =
      list.blob_begin +
      (block_id == 0 ? 0 : blocks_[list.first_block + block_id - 1].blob_end_rel);
  const size_t end = std::min<size_t>(list.blob_begin + bm.blob_end_rel,
                                      blob_size_);
  const uint8_t* p = blob_ + std::min(begin, end);
  const uint8_t* e = blob_ + end;
  const auto read_varint = [&]() -> uint32_t {
    uint32_t d = 0;
    int shift = 0;
    while (p < e) {
      const uint8_t byte = *p++;
      d |= static_cast<uint32_t>(byte & 0x7Fu) << shift;
      if ((byte & 0x80u) == 0) break;
      shift += 7;
      if (shift > 28) break;  // Malformed: varint too long; d is bounded.
    }
    return d;
  };
  // Postings are (rank delta, position) pairs in ascending-rank order
  // delta-based from a zero base (blocks inside a class segment are
  // rank-ordered, not position-ordered, so no neighbor offers one). The
  // scan stops — and stops paying — the moment the running rank passes
  // `rank_limit`.
  uint32_t rank = bm.min_rank;
  uint32_t prev_pos = 0;
  const size_t want = std::min<size_t>(bm.count, kBlockSize);
  size_t cnt = 0;
  while (cnt < want && p < e) {
    const uint32_t dr = read_varint();
    const uint64_t r = static_cast<uint64_t>(rank) + dr;
    if (r > rank_limit) break;  // Prefix filter: later pairs rank higher.
    const uint32_t dp = read_varint();
    const uint64_t v = dr == 0 ? static_cast<uint64_t>(prev_pos) + dp : dp;
    if (v >= n_) break;  // Malformed: clamp, never emit out of range.
    rank = static_cast<uint32_t>(r);
    prev_pos = static_cast<uint32_t>(v);
    out[cnt++] = prev_pos;
  }
  return cnt;
}

void BlockedIndex::ForEachCandidateImpl(size_t pos, QueryScratch* scratch,
                                        FunctionRef<bool(size_t)> fn) const {
  uint64_t postings_scanned = 0;
  uint64_t postings_decoded = 0;
  uint64_t blocks_decoded = 0;
  uint64_t blocks_skipped = 0;
  uint64_t candidates = 0;
  const auto flush = [&] {
    const ProbeCounters& counters = ProbeCounters::Get();
    counters.queries->Increment();
    counters.postings_scanned->Add(postings_scanned);
    counters.candidates->Add(candidates);
    counters.blocks_skipped->Add(blocks_skipped);
    counters.blocks_decoded->Add(blocks_decoded);
    counters.postings_decoded->Add(postings_decoded);
  };

  if (scratch->counts.size() < n_) scratch->counts.assign(n_, 0);
  scratch->touched.clear();
  const std::vector<text::TokenId>& sig = pred_->Signature(items_[pos]);
  const size_t s = sig.size();
  EnsureThresholds(s, scratch);

  scratch->scan_lists.clear();
  text::TokenId prev_t = text::kInvalidToken;
  for (size_t idx = 0; idx < sig.size(); ++idx) {
    const text::TokenId t = sig[idx];
    if (t < 0 || static_cast<size_t>(t) >= token_count_) continue;
    if (t == prev_t) continue;  // Contract: sorted unique.
    prev_t = t;
    const ListMeta& lm = lists_[t];
    postings_scanned += lm.count;
    if (lm.count > 0) {
      scratch->scan_lists.emplace_back(static_cast<uint32_t>(t),
                                       static_cast<uint32_t>(idx));
    }
  }

  const size_t num_lists = scratch->scan_lists.size();
  uint64_t total_blocks = 0;
  for (const auto& [t, idx] : scratch->scan_lists) {
    total_blocks += ListBlockCount(t);
  }

  // Memoized replay: a resident index that has already enumerated this item
  // replays the recorded candidate list in identical order — zero blocks
  // touched, so the whole query-list footprint counts as skipped.
  if (memo_ != nullptr) {
    const std::vector<uint32_t>* hit =
        memo_->slots[pos].load(std::memory_order_acquire);
    if (hit != nullptr) {
      blocks_skipped += total_blocks;
      for (const uint32_t ext : *hit) {
        ++candidates;
        if (!fn(ext)) break;
      }
      flush();
      return;
    }
  }

  if (scratch->admissible_sizes.empty() || num_lists == 0) {
    flush();
    return;
  }
  const uint32_t self_ip = rank_[pos];
  // While filling a memo slot, enumeration runs to completion even after
  // the consumer stops (fn is no longer called) so the recorded list is
  // the item's full candidate set.
  const bool memo_fill = memo_ != nullptr;
  std::vector<uint32_t> memo_vec;

  // Enumerate per signature-size class. Items are ordered by size, so class
  // z occupies one contiguous internal position range and one contiguous
  // block segment of every posting list; all of a class's candidates share
  // the same threshold thr(z). A metadata-only pre-pass locates each query
  // list's class segment and the rank-filtered prefix of it, then one of
  // two sound generation schemes is chosen by its metadata-predicted
  // decode cost:
  //
  //   * SUFFIX-DROP: a qualifying candidate shares a token with the query
  //     outside any fixed thr(z)-1 of the L_z lists with a non-empty class
  //     segment, so decoding the L_z-thr(z)+1 SMALLEST segments generates
  //     every candidate (and if L_z < thr(z) the class has no candidates
  //     at all).
  //   * POSITIONAL PREFIX (ppjoin-style): order token lists by token id —
  //     the order signatures are stored in. The first common token of a
  //     qualifying pair lies at index <= |sig|-thr(z) in the query
  //     signature and at rank <= z-thr(z) in the candidate signature, so
  //     it suffices to decode, for the query's first |sig|-thr(z)+1
  //     tokens, the segment blocks whose min_rank can still reach that
  //     bound (blocks are carved in ascending-rank order).
  //
  //   Candidates the counting pass leaves short of thr(z) are verified by
  //   a direct signature merge, never by decoding more postings.
  bool keep_going = true;
  for (size_t ci = 0;
       ci < scratch->admissible_sizes.size() && (keep_going || memo_fill);
       ++ci) {
    const uint32_t z = scratch->admissible_sizes[ci];
    const int thr = scratch->thresholds[z];
    if (static_cast<size_t>(thr) > num_lists) continue;  // Class unreachable.
    const uint32_t* size_begin = sig_size_;
    const uint32_t* size_end = sig_size_ + n_;
    const uint32_t z_begin = static_cast<uint32_t>(
        std::lower_bound(size_begin, size_end, z) - size_begin);
    const uint32_t z_end = static_cast<uint32_t>(
        std::upper_bound(size_begin + z_begin, size_end, z) - size_begin);
    if (z_begin == z_end) continue;

    // Metadata pre-pass: locate each query list's class-z block segment
    // (blocks are class-pure with nondecreasing min_sig) and the prefix of
    // it reachable under the candidate-side rank bound z - thr. Lists with
    // an empty segment cannot contribute a token to any class-z candidate
    // and drop out entirely.
    const uint32_t rank_limit = static_cast<uint32_t>(z - thr);
    const uint32_t pref_idx_limit = static_cast<uint32_t>(s - thr);
    scratch->class_lists.clear();
    uint64_t cost_prefix = 0;
    for (const auto& [t, idx] : scratch->scan_lists) {
      const ListMeta& lm = lists_[t];
      const uint32_t nb = ListBlockCount(t);
      uint32_t lo = 0;
      uint32_t hi = nb;
      while (lo < hi) {  // First block of class z.
        const uint32_t mid = lo + (hi - lo) / 2;
        if (blocks_[lm.first_block + mid].min_sig < z) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      const uint32_t seg_begin = lo;
      hi = nb;
      while (lo < hi) {  // First block past class z.
        const uint32_t mid = lo + (hi - lo) / 2;
        if (blocks_[lm.first_block + mid].min_sig <= z) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      const uint32_t seg_end = lo;
      if (seg_begin == seg_end) continue;
      lo = seg_begin;
      hi = seg_end;
      while (lo < hi) {  // First segment block past the rank bound.
        const uint32_t mid = lo + (hi - lo) / 2;
        if (blocks_[lm.first_block + mid].min_rank <= rank_limit) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      const uint32_t pref_end = lo;
      uint32_t seg_count = 0;
      uint32_t pref_count = 0;
      for (uint32_t b = seg_begin; b < seg_end; ++b) {
        const uint32_t c = blocks_[lm.first_block + b].count;
        seg_count += c;
        if (b < pref_end) pref_count += c;
      }
      if (seg_count == 0) continue;
      scratch->class_lists.push_back(
          {t, idx, seg_count, pref_count, seg_begin, seg_end, pref_end});
      if (idx <= pref_idx_limit && pref_count > 0) {
        // The decoder stops mid-block once ranks pass the bound, so the
        // expected cost under a uniform rank model is the rank fraction of
        // the segment, floored at one pair per non-empty prefix.
        cost_prefix += std::max<uint64_t>(
            1, std::min<uint64_t>(
                   pref_count,
                   (static_cast<uint64_t>(seg_count) * (rank_limit + 1) +
                    z - 1) /
                       z));
      }
    }
    if (scratch->class_lists.size() < static_cast<size_t>(thr)) continue;
    bool prefix_reachable = false;
    for (const QueryScratch::ClassListRef& ref : scratch->class_lists) {
      if (ref.sig_idx <= pref_idx_limit && ref.pref_count > 0) {
        prefix_reachable = true;
        break;
      }
    }
    if (!prefix_reachable) continue;  // No reachable first common token.

    // Suffix-drop cost: the L_z - thr + 1 smallest segments.
    std::sort(scratch->class_lists.begin(), scratch->class_lists.end(),
              [](const QueryScratch::ClassListRef& a,
                 const QueryScratch::ClassListRef& b) {
                if (a.seg_count != b.seg_count) {
                  return a.seg_count < b.seg_count;
                }
                return a.token < b.token;
              });
    const size_t scan_n = scratch->class_lists.size() -
                          (static_cast<size_t>(thr) - 1);  // >= 1.
    uint64_t cost_suffix = 0;
    for (size_t li = 0; li < scan_n; ++li) {
      cost_suffix += scratch->class_lists[li].seg_count;
    }
    const bool use_prefix = cost_prefix < cost_suffix;

    scratch->decode_buf.resize(kBlockSize);
    scratch->touched.clear();

    // Counting pass over the chosen scheme's block ranges.
    uint32_t* scan_buf = scratch->decode_buf.data();
    const size_t gen_n = use_prefix ? scratch->class_lists.size() : scan_n;
    const uint32_t decode_limit =
        use_prefix ? rank_limit : std::numeric_limits<uint32_t>::max();
    for (size_t li = 0; li < gen_n; ++li) {
      const QueryScratch::ClassListRef& ref = scratch->class_lists[li];
      if (use_prefix && ref.sig_idx > pref_idx_limit) continue;
      const ListMeta& lm = lists_[ref.token];
      const uint32_t gen_end = use_prefix ? ref.pref_end : ref.block_end;
      for (uint32_t b = ref.block_begin; b < gen_end; ++b) {
        const BlockMeta& bm = blocks_[lm.first_block + b];
        if (bm.max_sig < z || bm.min_sig > z) continue;  // Foreign block.
        const size_t cnt = DecodeBlock(lm, b, decode_limit, scan_buf);
        ++blocks_decoded;
        postings_decoded += cnt;
        for (size_t i = 0; i < cnt; ++i) {
          const uint32_t v = scan_buf[i];
          if (v >= z_begin && v < z_end && v != self_ip) {
            if (scratch->counts[v] == 0) scratch->touched.push_back(v);
            ++scratch->counts[v];
          }
        }
      }
    }

    // Qualify pass: a candidate the generation lists counted thr times is
    // in; the rest are verified by a direct merge of the two sorted
    // signatures (both already resident via the predicate) with early
    // accept/reject — no posting list is ever decoded for verification.
    // Scratch counts are always reset, even after the consumer stops.
    for (const uint32_t ip : scratch->touched) {
      const int count = scratch->counts[ip];
      scratch->counts[ip] = 0;
      if (!keep_going && !memo_fill) continue;
      if (count < thr) {
        const std::vector<text::TokenId>& other =
            pred_->Signature(items_[order_[ip]]);
        int common = 0;
        size_t a = 0;
        size_t b = 0;
        const size_t an = sig.size();
        const size_t bn = other.size();
        while (common < thr) {
          // Out of reach even if one side's remainder fully matches.
          if (common + static_cast<int>(std::min(an - a, bn - b)) < thr) break;
          const text::TokenId ta = sig[a];
          const text::TokenId tb = other[b];
          if (ta < tb) {
            ++a;
          } else if (tb < ta) {
            ++b;
          } else {
            if (ta >= 0) ++common;  // Invalid tokens never count as shared.
            ++a;
            ++b;
          }
        }
        if (common < thr) continue;
      }
      if (memo_fill) memo_vec.push_back(order_[ip]);
      if (keep_going) {
        ++candidates;
        keep_going = fn(order_[ip]);
      }
    }
  }
  if (memo_fill) {
    auto* filled = new std::vector<uint32_t>(std::move(memo_vec));
    filled->shrink_to_fit();
    const std::vector<uint32_t>* expected = nullptr;
    if (!memo_->slots[pos].compare_exchange_strong(
            expected, filled, std::memory_order_release,
            std::memory_order_acquire)) {
      delete filled;  // Raced fill: the published list is identical.
    }
  }
  // Net block-skip accounting: how many of the query lists' blocks were
  // never decoded (boundary blocks decoded once per adjacent class can
  // make the decode count exceed the walk of a plain scan; clamp at zero).
  blocks_skipped += total_blocks > blocks_decoded
                        ? total_blocks - blocks_decoded
                        : 0;
  flush();
}

void BlockedIndex::ForEachCandidatePairInRangeImpl(
    size_t begin, size_t end, QueryScratch* scratch,
    FunctionRef<void(size_t, size_t)> fn) const {
  const size_t last = std::min(end, n_);
  for (size_t p = begin; p < last; ++p) {
    ForEachCandidateImpl(p, scratch, FunctionRef<bool(size_t)>([&](size_t q) {
                           if (p < q) fn(p, q);
                           return true;
                         }));
  }
}

// ---------------------------------------------------------------------------
// Serialization.

size_t BlockedIndex::serialized_bytes() const {
  return kHeaderSize + ComputeLayout(n_, token_count_, distinct_size_count_,
                                     block_count_, blob_size_)
                           .total;
}

std::string BlockedIndex::Serialize() const {
  const Layout lay = ComputeLayout(n_, token_count_, distinct_size_count_,
                                   block_count_, blob_size_);
  const uint8_t* body = reinterpret_cast<const uint8_t*>(items_);
  IndexHeader header{};
  header.magic = kMagic;
  header.version = kFormatVersion;
  header.header_size = static_cast<uint32_t>(kHeaderSize);
  header.n = n_;
  header.token_count = token_count_;
  header.distinct_size_count = distinct_size_count_;
  header.block_count = block_count_;
  header.blob_bytes = blob_size_;
  header.posting_count = posting_count_;
  header.max_sig_size = max_sig_size_;
  header.flags = 0;
  header.body_size = lay.total;
  header.pred_name_hash = Fnv1a(pred_->name());
  header.body_crc32 = lay.total > 0 ? Crc32(body, lay.total) : 0;
  std::string out(kHeaderSize + lay.total, '\0');
  std::memcpy(out.data(), &header, kHeaderSize);
  header.header_crc32 =
      Crc32(reinterpret_cast<const uint8_t*>(out.data()), kHeaderSize - 4);
  std::memcpy(out.data(), &header, kHeaderSize);
  if (lay.total > 0) std::memcpy(out.data() + kHeaderSize, body, lay.total);
  return out;
}

Status BlockedIndex::SerializeToFile(const std::string& path) const {
  const std::string image = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = image.empty()
                             ? 0
                             : std::fwrite(image.data(), 1, image.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != image.size() || !closed) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status BlockedIndex::Validate(size_t record_count) const {
  for (size_t i = 0; i < n_; ++i) {
    if (items_[i] >= record_count) {
      return Status::InvalidArgument("index item out of corpus range");
    }
    if (rank_[i] >= n_ || order_[i] >= n_) {
      return Status::InvalidArgument("index permutation out of range");
    }
  }
  for (size_t i = 0; i < n_; ++i) {
    if (order_[rank_[i]] != i) {
      return Status::InvalidArgument("index permutation is not a bijection");
    }
  }
  uint32_t max_seen = 0;
  for (size_t ip = 0; ip < n_; ++ip) {
    const uint32_t z = sig_size_[ip];
    if (z > max_sig_size_) {
      return Status::InvalidArgument("signature size above declared maximum");
    }
    if (ip > 0 && z < sig_size_[ip - 1]) {
      // The per-class enumeration binary-searches this array; items must be
      // ordered by signature size.
      return Status::InvalidArgument("items are not ordered by size class");
    }
    max_seen = std::max(max_seen, z);
    if (!std::binary_search(distinct_sizes_,
                            distinct_sizes_ + distinct_size_count_, z)) {
      return Status::InvalidArgument(
          "signature size missing from distinct-size table");
    }
    const size_t rec = items_[order_[ip]];
    if (pred_->Signature(rec).size() != z) {
      return Status::InvalidArgument(
          "stored signature size disagrees with the predicate");
    }
  }
  if (n_ > 0 && max_seen != max_sig_size_) {
    return Status::InvalidArgument("declared max signature size is inflated");
  }
  for (size_t i = 0; i + 1 < distinct_size_count_; ++i) {
    if (distinct_sizes_[i] >= distinct_sizes_[i + 1]) {
      return Status::InvalidArgument("distinct-size table is not sorted");
    }
  }
  if (distinct_size_count_ > 0 &&
      distinct_sizes_[distinct_size_count_ - 1] > max_sig_size_) {
    return Status::InvalidArgument("distinct-size table above maximum");
  }

  uint64_t postings = 0;
  uint64_t next_block = 0;
  uint64_t next_blob = 0;
  for (size_t t = 0; t < token_count_; ++t) {
    const ListMeta& lm = lists_[t];
    if (lm.count > n_) {
      return Status::InvalidArgument("posting list longer than the corpus");
    }
    if (lm.first_block != next_block || lm.blob_begin != next_blob) {
      return Status::InvalidArgument("posting-list table is not contiguous");
    }
    // Blocks are variable-length (capped at kBlockSize, never spanning a
    // size-class boundary), so the list's block span is derived from the
    // next list's first block; walk it and cross-check the posting count.
    const uint32_t nb = ListBlockCount(t);
    if (lm.first_block + static_cast<uint64_t>(nb) > block_count_ ||
        nb > lm.count) {
      return Status::InvalidArgument("block table overflow");
    }
    next_block += nb;
    postings += lm.count;
    uint32_t prev_end = 0;
    uint32_t prev_sig = 0;
    uint32_t prev_rank = 0;
    uint64_t in_blocks = 0;
    for (uint32_t b = 0; b < nb; ++b) {
      const BlockMeta& bm = blocks_[lm.first_block + b];
      if (bm.count == 0 || bm.count > kBlockSize) {
        return Status::InvalidArgument("block count out of range");
      }
      in_blocks += bm.count;
      if (bm.blob_end_rel < prev_end) {
        return Status::InvalidArgument("block byte extents are not monotone");
      }
      if (bm.last_pos >= n_) {
        return Status::InvalidArgument("block position out of range");
      }
      if (bm.min_sig > bm.max_sig || bm.max_sig > max_sig_size_) {
        return Status::InvalidArgument("block signature range is malformed");
      }
      // The class-segment binary search needs min_sig nondecreasing along
      // the list; the rank-prefix binary search needs min_rank
      // nondecreasing within each class segment.
      if (b > 0 && bm.min_sig < prev_sig) {
        return Status::InvalidArgument("block classes are not ordered");
      }
      if (b > 0 && bm.min_sig == prev_sig && bm.min_rank < prev_rank) {
        return Status::InvalidArgument("block ranks are not ordered");
      }
      if (bm.min_rank >= std::max<uint32_t>(bm.max_sig, 1)) {
        return Status::InvalidArgument("block rank exceeds signature size");
      }
      prev_end = bm.blob_end_rel;
      prev_sig = bm.min_sig;
      prev_rank = bm.min_rank;
    }
    if (in_blocks != lm.count) {
      return Status::InvalidArgument("block counts disagree with their list");
    }
    if (lm.blob_begin + prev_end > blob_size_) {
      return Status::InvalidArgument("posting blob extent out of range");
    }
    next_blob = lm.blob_begin + prev_end;
  }
  if (next_block != block_count_) {
    return Status::InvalidArgument("dangling blocks after the last list");
  }
  if (next_blob != blob_size_) {
    return Status::InvalidArgument("dangling bytes after the last list");
  }
  if (postings != posting_count_) {
    return Status::InvalidArgument("posting count disagrees with the lists");
  }
  return Status::OK();
}

namespace {

Status CheckHeader(const IndexHeader& header, const uint8_t* data,
                   size_t size, const PairPredicate& pred) {
  if (header.magic != kMagic) {
    return Status::InvalidArgument("not a serialized blocked index");
  }
  if (header.version != kFormatVersion) {
    return Status::InvalidArgument("unsupported blocked-index version");
  }
  if (header.header_size != kHeaderSize) {
    return Status::InvalidArgument("unexpected header size");
  }
  if (Crc32(data, kHeaderSize - 4) != header.header_crc32) {
    return Status::InvalidArgument("header checksum mismatch");
  }
  // Cap every count so the layout arithmetic below cannot overflow.
  constexpr uint64_t kCap = uint64_t{1} << 40;
  if (header.n > kCap || header.token_count > kCap ||
      header.distinct_size_count > kCap || header.block_count > kCap ||
      header.blob_bytes > kCap || header.posting_count > kCap ||
      header.body_size > kCap) {
    return Status::InvalidArgument("header counts out of range");
  }
  if (header.n > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("too many items for the position width");
  }
  const Layout lay =
      ComputeLayout(header.n, header.token_count, header.distinct_size_count,
                    header.block_count, header.blob_bytes);
  if (header.body_size != lay.total ||
      size != kHeaderSize + header.body_size) {
    return Status::InvalidArgument("image size disagrees with the header");
  }
  if (header.body_size > 0 &&
      Crc32(data + kHeaderSize, header.body_size) != header.body_crc32) {
    return Status::InvalidArgument("body checksum mismatch");
  }
  if (header.pred_name_hash != Fnv1a(pred.name())) {
    return Status::InvalidArgument(
        "index was built under a different predicate");
  }
  return Status::OK();
}

}  // namespace

StatusOr<BlockedIndex> BlockedIndex::Deserialize(const PairPredicate& pred,
                                                 size_t record_count,
                                                 std::string bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("truncated blocked-index image");
  }
  auto holder = std::make_shared<Mapping>();
  holder->bytes = std::move(bytes);
  const uint8_t* data =
      reinterpret_cast<const uint8_t*>(holder->bytes.data());
  IndexHeader header;
  std::memcpy(&header, data, kHeaderSize);
  TOPKDUP_RETURN_IF_ERROR(
      CheckHeader(header, data, holder->bytes.size(), pred));
  BlockedIndex index;
  index.pred_ = &pred;
  index.mapping_ = std::move(holder);
  index.n_ = header.n;
  index.token_count_ = header.token_count;
  index.distinct_size_count_ = header.distinct_size_count;
  index.block_count_ = header.block_count;
  index.blob_size_ = header.blob_bytes;
  index.posting_count_ = header.posting_count;
  index.max_sig_size_ = header.max_sig_size;
  index.BindViews(data + kHeaderSize, header.body_size);
  TOPKDUP_RETURN_IF_ERROR(index.Validate(record_count));
  return index;
}

StatusOr<BlockedIndex> BlockedIndex::LoadFromFile(const PairPredicate& pred,
                                                  size_t record_count,
                                                  const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderSize) {
    ::close(fd);
    return Status::InvalidArgument("truncated blocked-index image");
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot map " + path);
  }
  auto holder = std::make_shared<Mapping>();
  holder->addr = addr;
  holder->size = size;
  const uint8_t* data = static_cast<const uint8_t*>(addr);
  IndexHeader header;
  std::memcpy(&header, data, kHeaderSize);
  TOPKDUP_RETURN_IF_ERROR(CheckHeader(header, data, size, pred));
  BlockedIndex index;
  index.pred_ = &pred;
  index.mapping_ = std::move(holder);
  index.n_ = header.n;
  index.token_count_ = header.token_count;
  index.distinct_size_count_ = header.distinct_size_count;
  index.block_count_ = header.block_count;
  index.blob_size_ = header.blob_bytes;
  index.posting_count_ = header.posting_count;
  index.max_sig_size_ = header.max_sig_size;
  index.BindViews(data + kHeaderSize, header.body_size);
  TOPKDUP_RETURN_IF_ERROR(index.Validate(record_count));
  return index;
}

}  // namespace topkdup::predicates
