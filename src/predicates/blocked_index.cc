#include "predicates/blocked_index.h"

#include <algorithm>

#include "common/metrics.h"

namespace topkdup::predicates {

namespace {

/// Blocking-probe instrumentation (paper Figures 2-4 are all about how few
/// candidates survive blocking). Counts are accumulated in query-local
/// variables and flushed once per query, so the postings loops stay tight.
struct ProbeCounters {
  metrics::Counter* queries;
  metrics::Counter* postings_scanned;
  metrics::Counter* candidates;

  static const ProbeCounters& Get() {
    static const ProbeCounters counters = {
        metrics::Registry::Global().GetCounter(
            "predicates.blocked_index.queries"),
        metrics::Registry::Global().GetCounter(
            "predicates.blocked_index.postings_scanned"),
        metrics::Registry::Global().GetCounter(
            "predicates.blocked_index.candidates"),
    };
    return counters;
  }
};

}  // namespace

BlockedIndex::BlockedIndex(const PairPredicate& pred,
                           std::vector<size_t> items)
    : pred_(pred), items_(std::move(items)) {
  sig_sizes_.resize(items_.size());
  for (size_t pos = 0; pos < items_.size(); ++pos) {
    const std::vector<text::TokenId>& sig = pred_.Signature(items_[pos]);
    sig_sizes_[pos] = static_cast<uint32_t>(sig.size());
    for (text::TokenId t : sig) {
      if (static_cast<size_t>(t) >= postings_.size()) {
        postings_.resize(t + 1);
      }
      postings_[t].push_back(static_cast<uint32_t>(pos));
    }
  }
}

void BlockedIndex::ForEachCandidate(
    size_t pos, QueryScratch* scratch,
    const std::function<bool(size_t)>& fn) const {
  if (scratch->counts.size() < items_.size()) {
    scratch->counts.assign(items_.size(), 0);
  }
  scratch->touched.clear();
  size_t postings_scanned = 0;
  size_t candidates = 0;
  const std::vector<text::TokenId>& sig = pred_.Signature(items_[pos]);
  for (text::TokenId t : sig) {
    if (t < 0 || static_cast<size_t>(t) >= postings_.size()) continue;
    postings_scanned += postings_[t].size();
    for (uint32_t other : postings_[t]) {
      if (other == pos) continue;
      if (scratch->counts[other] == 0) scratch->touched.push_back(other);
      ++scratch->counts[other];
    }
  }
  bool keep_going = true;
  for (uint32_t other : scratch->touched) {
    if (keep_going && scratch->counts[other] >=
                          pred_.MinCommon(sig.size(), sig_sizes_[other])) {
      ++candidates;
      keep_going = fn(other);
    }
    scratch->counts[other] = 0;  // Always reset the scratch buffer.
  }
  const ProbeCounters& counters = ProbeCounters::Get();
  counters.queries->Increment();
  counters.postings_scanned->Add(postings_scanned);
  counters.candidates->Add(candidates);
}

void BlockedIndex::ForEachCandidate(
    size_t pos, const std::function<bool(size_t)>& fn) const {
  QueryScratch scratch;
  ForEachCandidate(pos, &scratch, fn);
}

void BlockedIndex::ForEachCandidatePairInRange(
    size_t begin, size_t end, QueryScratch* scratch,
    const std::function<void(size_t, size_t)>& fn) const {
  const size_t last = std::min(end, items_.size());
  for (size_t p = begin; p < last; ++p) {
    ForEachCandidate(p, scratch, [&](size_t q) {
      if (p < q) fn(p, q);
      return true;
    });
  }
}

void BlockedIndex::ForEachCandidatePair(
    const std::function<void(size_t, size_t)>& fn) const {
  QueryScratch scratch;
  ForEachCandidatePairInRange(0, items_.size(), &scratch, fn);
}

}  // namespace topkdup::predicates
