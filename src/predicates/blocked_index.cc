#include "predicates/blocked_index.h"

#include <algorithm>

namespace topkdup::predicates {

BlockedIndex::BlockedIndex(const PairPredicate& pred,
                           std::vector<size_t> items)
    : pred_(pred), items_(std::move(items)) {
  sig_sizes_.resize(items_.size());
  for (size_t pos = 0; pos < items_.size(); ++pos) {
    const std::vector<text::TokenId>& sig = pred_.Signature(items_[pos]);
    sig_sizes_[pos] = static_cast<uint32_t>(sig.size());
    for (text::TokenId t : sig) {
      if (static_cast<size_t>(t) >= postings_.size()) {
        postings_.resize(t + 1);
      }
      postings_[t].push_back(static_cast<uint32_t>(pos));
    }
  }
  counts_.assign(items_.size(), 0);
}

void BlockedIndex::ForEachCandidate(
    size_t pos, const std::function<bool(size_t)>& fn) const {
  touched_.clear();
  const std::vector<text::TokenId>& sig = pred_.Signature(items_[pos]);
  for (text::TokenId t : sig) {
    if (t < 0 || static_cast<size_t>(t) >= postings_.size()) continue;
    for (uint32_t other : postings_[t]) {
      if (other == pos) continue;
      if (counts_[other] == 0) touched_.push_back(other);
      ++counts_[other];
    }
  }
  bool keep_going = true;
  for (uint32_t other : touched_) {
    if (keep_going &&
        counts_[other] >= pred_.MinCommon(sig.size(), sig_sizes_[other])) {
      keep_going = fn(other);
    }
    counts_[other] = 0;  // Always reset the scratch buffer.
  }
}

void BlockedIndex::ForEachCandidatePair(
    const std::function<void(size_t, size_t)>& fn) const {
  for (size_t p = 0; p < items_.size(); ++p) {
    ForEachCandidate(p, [&](size_t q) {
      if (p < q) fn(p, q);
      return true;
    });
  }
}

}  // namespace topkdup::predicates
