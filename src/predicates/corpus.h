#ifndef TOPKDUP_PREDICATES_CORPUS_H_
#define TOPKDUP_PREDICATES_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "record/record.h"
#include "text/vocab.h"

namespace topkdup::predicates {

/// Per-field, per-record tokenized views of a Dataset, shared by every
/// predicate and similarity function in a pipeline run.
///
/// Building the corpus walks the dataset once per field and caches:
///   - the sorted word-token id set,
///   - the sorted q-gram id set (q is a corpus-wide option),
///   - the initials string,
/// plus a per-field word IDF table (each record is one document). All ids
/// live in a single shared Vocabulary so cross-field comparisons and IDF
/// lookups are consistent.
///
/// The corpus never mutates after Build, so predicates can hold plain
/// pointers into it.
class Corpus {
 public:
  struct Options {
    int qgram_q = 3;
    /// Stop words removed by the *_NonStop accessors (lowercased).
    std::vector<std::string> stop_words;
  };

  /// Builds the caches. `data` must outlive the corpus.
  static StatusOr<Corpus> Build(const record::Dataset* data, Options options);

  const record::Dataset& data() const { return *data_; }
  const text::Vocabulary& vocab() const { return vocab_; }
  size_t size() const { return data_->size(); }

  /// Sorted word-id set of field `f` of record `rec`.
  const std::vector<text::TokenId>& WordSet(size_t rec, int f) const {
    return word_sets_[f][rec];
  }

  /// Sorted word-id set with corpus stop words removed.
  const std::vector<text::TokenId>& NonStopWordSet(size_t rec, int f) const {
    return nonstop_sets_[f][rec];
  }

  /// Sorted q-gram-id set of field `f` of record `rec`.
  const std::vector<text::TokenId>& QGramSet(size_t rec, int f) const {
    return qgram_sets_[f][rec];
  }

  /// Initials (first letters of word tokens, in order) of field `f`.
  const std::string& InitialsOf(size_t rec, int f) const {
    return initials_[f][rec];
  }

  /// Word IDF statistics of field `f` (one document per record).
  const text::IdfTable& FieldIdf(int f) const { return field_idf_[f]; }

  /// Maximum word IDF of field `f` over the corpus (the weight of a word
  /// occurring in exactly one record). Used to scale custom similarities.
  double MaxIdf(int f) const { return max_idf_[f]; }

  /// Sorted id set of the configured stop words.
  const std::vector<text::TokenId>& stop_word_ids() const {
    return stop_word_ids_;
  }

  int qgram_q() const { return options_.qgram_q; }

 private:
  Corpus() = default;

  const record::Dataset* data_ = nullptr;
  Options options_;
  text::Vocabulary vocab_;
  std::vector<text::TokenId> stop_word_ids_;
  // Indexed [field][record].
  std::vector<std::vector<std::vector<text::TokenId>>> word_sets_;
  std::vector<std::vector<std::vector<text::TokenId>>> nonstop_sets_;
  std::vector<std::vector<std::vector<text::TokenId>>> qgram_sets_;
  std::vector<std::vector<std::string>> initials_;
  std::vector<text::IdfTable> field_idf_;
  std::vector<double> max_idf_;
};

}  // namespace topkdup::predicates

#endif  // TOPKDUP_PREDICATES_CORPUS_H_
