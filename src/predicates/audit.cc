#include "predicates/audit.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/timer.h"
#include "predicates/blocked_index.h"

namespace topkdup::predicates {

StatusOr<PredicateAudit> AuditPredicate(const record::Dataset& data,
                                        const PairPredicate& pred,
                                        const AuditOptions& options) {
  PredicateAudit audit;
  audit.name = std::string(pred.name());
  Rng rng(options.seed);

  std::map<int64_t, std::vector<size_t>> by_entity;
  for (size_t r = 0; r < data.size(); ++r) {
    if (data[r].entity_id < 0) {
      return Status::FailedPrecondition(
          "AuditPredicate: records must carry ground-truth entity ids");
    }
    by_entity[data[r].entity_id].push_back(r);
  }

  Timer eval_timer;
  size_t evals = 0;

  // Necessary check: duplicate pairs sampled within entities.
  for (const auto& [entity, members] : by_entity) {
    if (audit.duplicate_pairs_checked >= options.max_duplicate_pairs) break;
    if (members.size() < 2) continue;
    // Consecutive pairs plus one random pair per entity keep the sample
    // linear in the data size.
    for (size_t i = 0;
         i + 1 < members.size() &&
         audit.duplicate_pairs_checked < options.max_duplicate_pairs;
         ++i) {
      ++audit.duplicate_pairs_checked;
      ++evals;
      if (!pred.Evaluate(members[i], members[i + 1])) {
        ++audit.necessary_violations;
      }
    }
    if (members.size() > 2) {
      const size_t a = members[rng.Uniform(members.size())];
      const size_t b = members[rng.Uniform(members.size())];
      if (a != b) {
        ++audit.duplicate_pairs_checked;
        ++evals;
        if (!pred.Evaluate(a, b)) ++audit.necessary_violations;
      }
    }
  }

  // Blocking selectivity + sufficient check on a sample of items.
  std::vector<size_t> sample(data.size());
  std::iota(sample.begin(), sample.end(), size_t{0});
  rng.Shuffle(&sample);
  if (sample.size() > options.blocking_sample) {
    sample.resize(options.blocking_sample);
  }
  BlockedIndex index(pred, sample);
  size_t candidate_pairs = 0;
  index.ForEachCandidatePair([&](size_t p, size_t q) {
    ++candidate_pairs;
    if (audit.cross_pairs_checked >= options.max_cross_pairs) return;
    const size_t a = sample[p];
    const size_t b = sample[q];
    if (data[a].entity_id == data[b].entity_id) return;
    ++audit.cross_pairs_checked;
    ++evals;
    if (pred.Evaluate(a, b)) ++audit.sufficient_violations;
  });
  const double all_pairs = static_cast<double>(sample.size()) *
                           static_cast<double>(sample.size() - 1) / 2.0;
  audit.blocking_selectivity =
      all_pairs == 0.0 ? 0.0 : static_cast<double>(candidate_pairs) / all_pairs;
  audit.seconds_per_eval =
      evals == 0 ? 0.0 : eval_timer.ElapsedSeconds() / static_cast<double>(evals);
  return audit;
}

std::vector<size_t> SuggestLevelOrder(
    const std::vector<PredicateAudit>& audits) {
  std::vector<size_t> order(audits.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double cost_a =
        audits[a].seconds_per_eval * (1.0 + audits[a].blocking_selectivity);
    const double cost_b =
        audits[b].seconds_per_eval * (1.0 + audits[b].blocking_selectivity);
    if (cost_a != cost_b) return cost_a < cost_b;
    return audits[a].blocking_selectivity < audits[b].blocking_selectivity;
  });
  return order;
}

}  // namespace topkdup::predicates
