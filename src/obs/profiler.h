#ifndef TOPKDUP_OBS_PROFILER_H_
#define TOPKDUP_OBS_PROFILER_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace topkdup::obs {

/// Sampling-profiler session parameters.
struct ProfilerOptions {
  /// SIGPROF delivery rate (ITIMER_PROF fires per `1/hz` seconds of
  /// *process CPU*, so an idle process takes no samples and costs
  /// nothing). 99 Hz, the pprof convention, avoids lockstep with 100 Hz
  /// periodic work. Clamped to [1, 1000].
  int hz = 99;
  /// Preallocated sample slots across all stripes; samples beyond this
  /// are counted as dropped, never buffered. 65536 slots ≈ 25 MB and
  /// eleven minutes of 99 Hz samples.
  size_t max_samples = 65536;
};

/// On-demand SIGPROF sampling CPU profiler for the resident process,
/// producing collapsed-stack text ("frame;frame;frame count" per line)
/// that flamegraph.pl renders directly. One global instance — signal
/// dispositions and ITIMER_PROF are process-wide state, so there is
/// nothing per-object to own.
///
/// Signal-safety contract (see DESIGN.md §6i): the handler touches only
/// pre-allocated striped sample slabs claimed by atomic cursor
/// (lock-free, no malloc, no locks), calls backtrace() — primed once at
/// arm time so libgcc's lazy initialization (which allocates) happens
/// outside signal context — and saves/restores errno. Symbolization and
/// demangling are deferred to Stop(), which runs on a normal thread.
/// When disarmed the handler is uninstalled entirely, so the steady-state
/// cost of having the profiler linked in is zero; during teardown a
/// straggler signal costs one atomic load and a branch.
class Profiler {
 public:
  static Profiler& Global();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Arms the profiler: installs the SIGPROF handler and starts
  /// ITIMER_PROF. Fails with FailedPrecondition if already armed.
  Status Start(const ProfilerOptions& options = {});

  /// Disarms (timer off, pending SIGPROF discarded, previous disposition
  /// restored) and returns the collapsed-stack rendering of every sample
  /// taken since Start(): root-first frames joined by ';', a space, and
  /// the sample count, one line per unique stack, sorted descending by
  /// count. Empty string when no samples were taken (an idle process).
  std::string Stop();

  /// Convenience for the admin endpoint: Start(), sleep `seconds`
  /// (clamped to [0.05, 30]), Stop(). Samples accumulate from every
  /// thread the kernel bills CPU to during the window.
  StatusOr<std::string> Collect(double seconds,
                                const ProfilerOptions& options = {});

  bool armed() const;
  /// Samples captured in the current/most recent session.
  uint64_t SamplesTaken() const;
  /// Samples lost to slab exhaustion in the current/most recent session.
  uint64_t SamplesDropped() const;

 private:
  Profiler() = default;
};

}  // namespace topkdup::obs

#endif  // TOPKDUP_OBS_PROFILER_H_
