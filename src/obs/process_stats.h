#ifndef TOPKDUP_OBS_PROCESS_STATS_H_
#define TOPKDUP_OBS_PROCESS_STATS_H_

#include <cstdint>

namespace topkdup::obs {

/// Point-in-time process self-stats read from /proc/self, so memory
/// growth and fd leaks are visible from /statusz without an external
/// agent. Fields are 0 when the proc file is unavailable (non-Linux).
struct ProcessSelfStats {
  uint64_t rss_bytes = 0;
  uint64_t open_fds = 0;
};

/// Reads RSS (from /proc/self/statm, resident pages × page size) and the
/// open-fd count (entries in /proc/self/fd). Also publishes the gauges
/// `process.rss_bytes` and `process.open_fds` in the global metrics
/// registry, so scrapes pick them up whenever something (the /statusz
/// handler in practice) samples.
ProcessSelfStats ReadProcessSelfStats();

}  // namespace topkdup::obs

#endif  // TOPKDUP_OBS_PROCESS_STATS_H_
