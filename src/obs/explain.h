#ifndef TOPKDUP_OBS_EXPLAIN_H_
#define TOPKDUP_OBS_EXPLAIN_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"

namespace topkdup::obs {

/// Query-level explain/introspection layer. Where common/metrics.h answers
/// "how much work did the pipeline do", this module answers "why did it
/// make a specific decision": which sufficient predicate merged a pair of
/// groups, which bound value killed a group against M, which Eq.-3 term
/// won an embedding slot, and how an answer's score decomposes.
///
/// The pipeline feeds an ExplainRecorder structured decision events;
/// Finish() assembles them into an ExplainReport renderable as a stable,
/// schema-versioned JSON document or an indented text report. Two cost
/// rules make it safe to leave compiled in:
///
///  - A null recorder costs one pointer test per potential event — the
///    explain-off path adds nothing measurable to the hot loops.
///  - Detail events are *sampled* by a deterministic hash of a stable
///    per-event key (group index, embedding step, winner representative),
///    never by an RNG, so the same events are captured at any thread
///    count and the volume is bounded by `sample_rate`. Section summaries
///    (counts, m, M, bounds) are always exact regardless of the rate.

/// One collapse merge: `loser` was folded into `winner` by the level's
/// sufficient predicate (the transitive closure of §4.1). Representatives
/// are record ids.
struct CollapseMergeExplain {
  size_t winner_rep = 0;
  size_t loser_rep = 0;
  double winner_weight = 0.0;
  double loser_weight = 0.0;
};

struct LevelCollapseExplain {
  size_t groups_in = 0;
  size_t groups_out = 0;
  std::vector<CollapseMergeExplain> sampled_merges;
};

/// One CPN lower-bound evaluation while locating m (§4.2): the prefix
/// size probed, the clique-partition bound it certified, and which search
/// phase asked ("gallop", "binary_search", or "linear").
struct CpnProbeExplain {
  size_t prefix = 0;
  int bound = 0;
  std::string phase;
};

struct LevelLowerBoundExplain {
  size_t m = 0;        // The prefix that fixed M.
  double M = 0.0;
  bool certified = false;
  size_t edges_examined = 0;
  size_t cpn_evaluations = 0;
  std::vector<CpnProbeExplain> probes;  // O(log n) — never sampled.
};

/// Which component of the §4.3 recursive upper bound decided a group's
/// fate in a prune pass.
enum class PruneVerdict {
  kKeptOwnWeight,      // weight >= M: the group can itself be an answer.
  kKeptBoundEarlyExit, // neighbor sum provably exceeded M before the scan
                       // finished (the early-exit fast path).
  kKeptBoundFull,      // full neighbor sum exceeded M.
  kPrunedBoundBelowM,  // upper bound <= M: discarded.
};

const char* PruneVerdictName(PruneVerdict verdict);

struct PruneDecisionExplain {
  int pass = 0;
  size_t group = 0;  // Index into the level's weight-sorted group list.
  size_t rep = 0;
  double weight = 0.0;
  double upper_bound = 0.0;  // The actual bound value compared against M.
  double M = 0.0;
  size_t neighbors_contributing = 0;  // N-passing alive neighbors summed.
  bool survived = false;
  PruneVerdict verdict = PruneVerdict::kPrunedBoundBelowM;
};

struct LevelPruneExplain {
  int passes = 0;
  double M = 0.0;
  size_t groups_in = 0;
  size_t groups_pruned = 0;  // Always exact; reconciles with LevelStats.
  size_t groups_out = 0;
  /// Sorted by (pass, group) — deterministic at any thread count.
  std::vector<PruneDecisionExplain> sampled_decisions;
};

struct LevelExplain {
  int level = 0;
  std::string sufficient_predicate;  // Empty when the level has none.
  std::string necessary_predicate;
  bool has_lower_bound = false;
  LevelCollapseExplain collapse;
  LevelLowerBoundExplain lower_bound;
  LevelPruneExplain prune;
};

/// One greedy-embedding placement (§5.3.1): the Eq.-3 aged affinity that
/// won the slot and the runner-up it beat. `runner_up` == items when no
/// other candidate had positive affinity.
struct EmbeddingPickExplain {
  size_t step = 0;
  size_t item = 0;
  double affinity = 0.0;
  size_t runner_up = 0;
  double runner_up_affinity = 0.0;
  bool new_region = false;  // Seeded by weight, not affinity.
};

struct EmbeddingExplain {
  size_t items = 0;
  double alpha = 0.0;
  size_t regions = 0;  // Number of affinity-less restarts (incl. first).
  std::vector<EmbeddingPickExplain> sampled_picks;
};

/// Segmentation-DP summary (§5.3.2): score-table dimensions and the
/// boundaries (inclusive span ends) of the best and runner-up full
/// segmentations.
struct SegmentDpExplain {
  size_t rows = 0;
  size_t band = 0;
  size_t cells_filled = 0;
  size_t answers_found = 0;
  std::vector<size_t> best_boundaries;
  std::vector<size_t> runner_up_boundaries;
};

/// How a query deadline degraded the run: the stage that stopped, the
/// level it stopped at, and how much of the work budget was spent. Only
/// rendered when the report's `has_degradation` flag is set, so reports
/// from undegraded runs are byte-identical to pre-deadline builds.
struct DegradationExplain {
  std::string stage;      // "collapse", "lower_bound", "prune", "segment".
  int level = 0;          // 1-based predicate level (0 for segment stage).
  std::string reason;     // DeadlineReasonName of the expiry cause.
  uint64_t work_done = 0;
  uint64_t work_budget = 0;  // 0 when only a wall-clock deadline was set.
  bool partial_stage = false;  // Expired mid-stage vs at a stage boundary.
};

/// Measured resource consumption of the query, as stamped by the serve
/// layer from its per-query ResourceMeter. Only rendered when
/// `has_resources` is set, so reports from non-serve paths stay
/// byte-identical to pre-attribution builds.
struct ResourceExplain {
  double cpu_ms = 0.0;
  /// Per-stage CPU milliseconds, sorted by stage name; the stage sum
  /// equals cpu_ms up to print rounding (see DESIGN.md §6i).
  std::vector<std::pair<std::string, double>> stages_ms;
};

/// Per-group score decomposition of one returned answer.
struct AnswerGroupExplain {
  double weight = 0.0;
  size_t representative = 0;
  size_t member_count = 0;
  size_t span_begin = 0;  // Embedding positions, inclusive.
  size_t span_end = 0;
  double segment_score = 0.0;  // S(span): this group's score contribution.
};

struct AnswerExplain {
  int rank = 0;
  double score = 0.0;
  double threshold = 0.0;
  double posterior = 0.0;
  std::vector<AnswerGroupExplain> groups;
};

/// The assembled per-query report. JSON schema is versioned like
/// WriteBenchJson's: bump kSchemaVersion on breaking field changes.
struct ExplainReport {
  static constexpr int kSchemaVersion = 1;

  /// Service-assigned query id (serve::QueryResponse::query_id), so a
  /// report fished out of the admin server's slow-query capture joins
  /// against the same query's request-log line and trace spans. 0 — the
  /// non-serve paths — renders nothing, keeping standalone reports
  /// byte-identical to pre-serve builds.
  uint64_t query_id = 0;
  /// Ingest epoch the query's pinned snapshot was published at (online
  /// datasets via the serve layer; 0 — static/standalone — renders
  /// nothing, like query_id).
  uint64_t epoch = 0;
  double sample_rate = 1.0;
  std::vector<LevelExplain> levels;
  bool has_embedding = false;
  EmbeddingExplain embedding;
  bool has_segment_dp = false;
  SegmentDpExplain segment_dp;
  std::vector<AnswerExplain> answers;
  bool has_degradation = false;
  DegradationExplain degradation;
  bool has_resources = false;
  ResourceExplain resources;
  /// Detail events discarded after the per-report cap; summaries stay
  /// exact even when this is non-zero.
  size_t events_dropped = 0;

  /// Stable single-document JSON ({"schema_version":1,...}).
  std::string ToJson() const;
  /// Indented human-readable rendering of the same content.
  std::string ToText() const;
};

/// Per-query event sink. One recorder serves one query: the serial driver
/// (PrunedDedup / TopKCountQuery) opens levels and records summaries;
/// parallel workers append sampled detail events concurrently (appends
/// take a mutex — explain is a debugging mode, and sampling bounds the
/// contention). Finish() sorts the concurrent sections into their
/// deterministic order and returns the report.
class ExplainRecorder {
 public:
  explicit ExplainRecorder(double sample_rate = 1.0);

  double sample_rate() const { return sample_rate_; }

  /// Stamps the report with the owning service query id (see
  /// ExplainReport::query_id). Serial (driver) only.
  void set_query_id(uint64_t query_id);

  /// Deterministic sampling decision for a stable event key: true for the
  /// same keys at any thread count or interleaving.
  bool SampleKey(uint64_t key) const;

  /// Opens the next predicate level; subsequent level-scoped events land
  /// there. Serial (driver loop) only.
  void BeginLevel(std::string sufficient_predicate,
                  std::string necessary_predicate, bool has_lower_bound);

  void RecordCollapseSummary(size_t groups_in, size_t groups_out);
  void RecordCollapseMerge(const CollapseMergeExplain& event);  // Thread-safe.
  void RecordCpnProbe(size_t prefix, int bound, const char* phase);
  void RecordLowerBound(size_t m, double M, bool certified,
                        size_t edges_examined, size_t cpn_evaluations);
  void RecordPruneSummary(int passes, double M, size_t groups_in,
                          size_t groups_out);
  void RecordPruneDecision(const PruneDecisionExplain& event);  // Thread-safe.

  void RecordEmbeddingSummary(size_t items, double alpha, size_t regions);
  void RecordEmbeddingPick(const EmbeddingPickExplain& event);
  void RecordSegmentDp(SegmentDpExplain summary);
  void RecordAnswer(AnswerExplain answer);

  /// Records how the query's deadline degraded the run. At most one
  /// degradation is kept per report (the first — later stages never run
  /// once the pipeline stops).
  void RecordDegradation(const DegradationInfo& info);

  /// Sorts concurrent sections deterministically and returns the report.
  /// The recorder is spent afterwards.
  ExplainReport Finish();

 private:
  /// Returns the level events should land in, creating an implicit one
  /// for callers used outside a PrunedDedup driver. mu_ must be held.
  LevelExplain& CurrentLevelLocked();
  bool AdmitDetailLocked();

  double sample_rate_;
  std::mutex mu_;
  ExplainReport report_;
  size_t detail_events_ = 0;
};

}  // namespace topkdup::obs

#endif  // TOPKDUP_OBS_EXPLAIN_H_
