#include "obs/profiler.h"

#include <cxxabi.h>
#include <execinfo.h>
#include <sched.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/strings.h"

namespace topkdup::obs {

namespace {

constexpr int kMaxFrames = 48;
/// Frames the handler itself contributes to every backtrace: the handler
/// and the kernel signal trampoline (__restore_rt). Dropped at collapse
/// time so stacks start at the interrupted frame.
constexpr int kSkipFrames = 2;
constexpr int kStripes = 16;

struct Sample {
  void* frames[kMaxFrames];
  int depth = 0;
};

/// One per-thread-group sample slab. Threads hash to a stripe by kernel
/// tid; the handler claims a slot with one relaxed fetch_add — no locks,
/// no allocation, so concurrently sampled threads never contend on a
/// shared cursor.
struct Stripe {
  std::atomic<uint32_t> cursor{0};
  Sample* slots = nullptr;   // Points into `slab`; read by the handler.
  uint32_t capacity = 0;     // Published before g_armed; read by handler.
  std::vector<Sample> slab;  // Owned storage, sized at Start().
};

Stripe g_stripes[kStripes];

/// seq_cst flag + inflight count let Stop() quiesce straggler handlers:
/// a handler that observes g_armed after raising g_inflight is guaranteed
/// to be waited out before the slabs are read or released.
std::atomic<bool> g_armed{false};
std::atomic<int> g_inflight{0};
std::atomic<uint64_t> g_dropped{0};

/// Control-plane state, all under ControlMutex().
bool g_session_open = false;
uint64_t g_last_taken = 0;
uint64_t g_last_dropped = 0;
struct sigaction g_old_action;

std::mutex& ControlMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

int StripeIndex() {
  thread_local int stripe = -1;
  if (stripe < 0) {
    stripe = static_cast<int>(
        static_cast<uint64_t>(::syscall(SYS_gettid)) % kStripes);
  }
  return stripe;
}

/// Async-signal-safe by construction: atomics, a claimed preallocated
/// slot, and backtrace() (primed at arm time so its one-time lazy
/// initialization, which allocates, ran outside signal context). errno is
/// preserved for the interrupted code.
void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* /*ucontext*/) {
  if (!g_armed.load(std::memory_order_seq_cst)) return;
  const int saved_errno = errno;
  g_inflight.fetch_add(1, std::memory_order_seq_cst);
  if (g_armed.load(std::memory_order_seq_cst)) {
    Stripe& stripe = g_stripes[StripeIndex()];
    const uint32_t idx =
        stripe.cursor.fetch_add(1, std::memory_order_relaxed);
    if (idx < stripe.capacity) {
      Sample& sample = stripe.slots[idx];
      const int depth = ::backtrace(sample.frames, kMaxFrames);
      sample.depth = depth > 0 ? depth : 0;
    } else {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  g_inflight.fetch_sub(1, std::memory_order_seq_cst);
  errno = saved_errno;
}

uint64_t TakenLocked() {
  uint64_t taken = 0;
  for (const Stripe& stripe : g_stripes) {
    taken += std::min<uint64_t>(
        stripe.cursor.load(std::memory_order_seq_cst), stripe.capacity);
  }
  return taken;
}

/// "binary(_ZN4...+0x1f) [0x...]" → demangled symbol, cleaned for the
/// collapsed-stack format (no ';', no spaces, parameter list dropped).
std::string SymbolizeFrame(void* addr) {
  std::string name;
  char** symbols = ::backtrace_symbols(&addr, 1);
  if (symbols != nullptr) {
    const std::string raw = symbols[0];
    std::free(symbols);
    const size_t open = raw.find('(');
    if (open != std::string::npos) {
      size_t end = raw.find('+', open + 1);
      if (end == std::string::npos) end = raw.find(')', open + 1);
      if (end != std::string::npos && end > open + 1) {
        const std::string mangled = raw.substr(open + 1, end - open - 1);
        int status = -1;
        char* demangled =
            abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
        if (status == 0 && demangled != nullptr) {
          name = demangled;
        } else {
          name = mangled;
        }
        std::free(demangled);
      }
    }
  }
  if (name.empty()) {
    return StrFormat("0x%llx",
                     static_cast<unsigned long long>(
                         reinterpret_cast<uintptr_t>(addr)));
  }
  // Drop the parameter list and scrub the two characters the collapsed
  // format reserves (';' separates frames, ' ' separates the count).
  const size_t paren = name.find('(');
  if (paren != std::string::npos && paren > 0) name.resize(paren);
  for (char& c : name) {
    if (c == ';' || c == ' ') c = ':';
  }
  return name;
}

/// Aggregates the session's samples into collapsed-stack lines:
/// root-first frames joined by ';', " <count>", sorted by count
/// descending then stack text, so identical sample sets render
/// identically.
std::string CollapseLocked() {
  std::map<std::vector<void*>, uint64_t> counts;
  for (const Stripe& stripe : g_stripes) {
    const uint32_t filled = std::min<uint32_t>(
        stripe.cursor.load(std::memory_order_seq_cst), stripe.capacity);
    for (uint32_t i = 0; i < filled; ++i) {
      const Sample& sample = stripe.slots[i];
      if (sample.depth <= 0) continue;
      const int begin = sample.depth > kSkipFrames ? kSkipFrames : 0;
      std::vector<void*> stack(sample.frames + begin,
                               sample.frames + sample.depth);
      std::reverse(stack.begin(), stack.end());  // Leaf-first → root-first.
      ++counts[std::move(stack)];
    }
  }
  if (counts.empty()) return "";

  std::map<void*, std::string> names;
  for (const auto& [stack, count] : counts) {
    for (void* addr : stack) {
      if (names.find(addr) == names.end()) names[addr] = SymbolizeFrame(addr);
    }
  }

  std::vector<std::pair<std::string, uint64_t>> lines;
  lines.reserve(counts.size());
  for (const auto& [stack, count] : counts) {
    std::string line;
    for (size_t i = 0; i < stack.size(); ++i) {
      if (i > 0) line += ';';
      line += names[stack[i]];
    }
    lines.emplace_back(std::move(line), count);
  }
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  std::string out;
  for (const auto& [stack, count] : lines) {
    out += stack;
    out += StrFormat(" %llu\n", static_cast<unsigned long long>(count));
  }
  return out;
}

}  // namespace

Profiler& Profiler::Global() {
  static Profiler* instance = new Profiler();
  return *instance;
}

Status Profiler::Start(const ProfilerOptions& options) {
  std::lock_guard<std::mutex> lock(ControlMutex());
  if (g_session_open) {
    return Status::FailedPrecondition("profiler already armed");
  }
  const int hz = std::clamp(options.hz, 1, 1000);
  const size_t max_samples =
      std::clamp<size_t>(options.max_samples, kStripes, 1u << 22);
  const uint32_t per_stripe =
      static_cast<uint32_t>((max_samples + kStripes - 1) / kStripes);
  for (Stripe& stripe : g_stripes) {
    stripe.slab.assign(per_stripe, Sample{});
    stripe.slots = stripe.slab.data();
    stripe.capacity = per_stripe;
    stripe.cursor.store(0, std::memory_order_seq_cst);
  }
  g_dropped.store(0, std::memory_order_seq_cst);

  // Prime backtrace: its first call lazily loads the unwinder (libgcc),
  // which allocates — do it here, never in the handler.
  void* warm[4];
  (void)::backtrace(warm, 4);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = SigprofHandler;
  action.sa_flags = SA_RESTART | SA_SIGINFO;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGPROF, &action, &g_old_action) != 0) {
    return Status::Internal("profiler: sigaction failed");
  }
  g_armed.store(true, std::memory_order_seq_cst);

  itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  const long interval_us = std::max(1000000L / hz, 1000L);
  timer.it_interval.tv_sec = interval_us / 1000000;
  timer.it_interval.tv_usec = interval_us % 1000000;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_armed.store(false, std::memory_order_seq_cst);
    ::sigaction(SIGPROF, &g_old_action, nullptr);
    return Status::Internal("profiler: setitimer failed");
  }

  g_session_open = true;
  metrics::Registry::Global().GetCounter("obs.profiler.sessions")
      ->Increment();
  return Status::OK();
}

std::string Profiler::Stop() {
  std::lock_guard<std::mutex> lock(ControlMutex());
  if (!g_session_open) return "";

  itimerval off;
  std::memset(&off, 0, sizeof(off));
  ::setitimer(ITIMER_PROF, &off, nullptr);
  g_armed.store(false, std::memory_order_seq_cst);
  // Discard any SIGPROF still pending before the old disposition (often
  // SIG_DFL, which terminates the process) comes back: SIG_IGN drops
  // pending occurrences by POSIX rule.
  ::signal(SIGPROF, SIG_IGN);
  while (g_inflight.load(std::memory_order_seq_cst) != 0) ::sched_yield();
  ::sigaction(SIGPROF, &g_old_action, nullptr);

  g_last_taken = TakenLocked();
  g_last_dropped = g_dropped.load(std::memory_order_seq_cst);
  auto& registry = metrics::Registry::Global();
  registry.GetCounter("obs.profiler.samples")->Add(g_last_taken);
  registry.GetCounter("obs.profiler.dropped")->Add(g_last_dropped);

  std::string collapsed = CollapseLocked();
  for (Stripe& stripe : g_stripes) {
    stripe.slots = nullptr;
    stripe.capacity = 0;
    std::vector<Sample>().swap(stripe.slab);
  }
  g_session_open = false;
  return collapsed;
}

StatusOr<std::string> Profiler::Collect(double seconds,
                                        const ProfilerOptions& options) {
  seconds = std::clamp(seconds, 0.05, 30.0);
  Status started = Start(options);
  if (!started.ok()) return started;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return Stop();
}

bool Profiler::armed() const {
  std::lock_guard<std::mutex> lock(ControlMutex());
  return g_session_open;
}

uint64_t Profiler::SamplesTaken() const {
  std::lock_guard<std::mutex> lock(ControlMutex());
  return g_session_open ? TakenLocked() : g_last_taken;
}

uint64_t Profiler::SamplesDropped() const {
  std::lock_guard<std::mutex> lock(ControlMutex());
  return g_session_open ? g_dropped.load(std::memory_order_seq_cst)
                        : g_last_dropped;
}

}  // namespace topkdup::obs
