#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace topkdup::obs {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
  }
  return "Unknown";
}

/// "/debug/queries" -> "debug_queries": the per-endpoint counter key, fed
/// through the obs.admin.endpoint Prometheus label rule.
std::string EndpointKey(std::string_view path) {
  std::string key;
  key.reserve(path.size());
  for (char c : path) {
    const bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9');
    if (alnum) {
      key.push_back(c);
    } else if (!key.empty() && key.back() != '_') {
      key.push_back('_');
    }
  }
  while (!key.empty() && key.back() == '_') key.pop_back();
  return key.empty() ? "root" : key;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Frames and sends `response`. For HEAD requests (`head_only`) the body
/// is measured for Content-Length but not sent, so HEAD answers are
/// byte-for-byte the headers of the matching GET.
void WriteResponse(int fd, const AdminResponse& response, bool head_only) {
  std::string out = StrFormat(
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n",
      response.status, ReasonPhrase(response.status),
      response.content_type.c_str(), response.body.size());
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  if (!head_only) out += response.body;
  SendAll(fd, out);
}

/// Splits "a=1&b=2" into params; bare keys map to "".
void ParseQueryParams(AdminRequest& request) {
  size_t pos = 0;
  while (pos <= request.query.size()) {
    size_t amp = request.query.find('&', pos);
    if (amp == std::string::npos) amp = request.query.size();
    if (amp > pos) {
      const std::string pair = request.query.substr(pos, amp - pos);
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request.params[pair] = "";
      } else {
        request.params[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
    }
    pos = amp + 1;
  }
}

}  // namespace

AdminServer::AdminServer(AdminServerOptions options)
    : options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(std::string path, AdminHandler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

void AdminServer::Handle(std::string path,
                         std::function<AdminResponse()> handler) {
  handlers_[std::move(path)] =
      [handler = std::move(handler)](const AdminRequest&) {
        return handler();
      };
}

Status AdminServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("AdminServer: already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("AdminServer: socket() failed");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(
        StrFormat("AdminServer: cannot bind %s:%d",
                  options_.bind_address.c_str(), options_.port));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("AdminServer: listen() failed");
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = options_.port;
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  TOPKDUP_LOG(Info) << "admin server listening on " << options_.bind_address
                    << ":" << port_;
  return Status::OK();
}

void AdminServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void AdminServer::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // The 100ms poll bound is the Stop() latency ceiling.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    timeval io_timeout;
    io_timeout.tv_sec = options_.io_timeout_ms / 1000;
    io_timeout.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
                 sizeof(io_timeout));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
                 sizeof(io_timeout));
    ServeConnection(client);
    ::close(client);
  }
}

void AdminServer::ServeConnection(int fd) {
  auto& registry = metrics::Registry::Global();
  metrics::Counter* requests = registry.GetCounter("obs.admin.requests");
  metrics::Counter* errors = registry.GetCounter("obs.admin.errors");

  // Read until the end of the request head. Bodies are never read: every
  // admin endpoint is a GET, and 8KB bounds a hostile or confused client.
  std::string head;
  char buf[2048];
  while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) {
    // Not even one full request line: drop without a counter tick — this
    // is a connect-and-hang probe, not a request.
    return;
  }
  requests->Increment();

  const std::string request_line = head.substr(0, line_end);
  const size_t method_end = request_line.find(' ');
  const size_t target_end = request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos || target_end == std::string::npos) {
    errors->Increment();
    WriteResponse(fd, {400, "text/plain; charset=utf-8", "bad request\n", {}},
                  false);
    return;
  }
  AdminRequest request;
  request.method = request_line.substr(0, method_end);
  request.path =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  const size_t query_pos = request.path.find('?');
  if (query_pos != std::string::npos) {
    request.query = request.path.substr(query_pos + 1);
    request.path.resize(query_pos);
  }
  ParseQueryParams(request);

  // HEAD is answered exactly like GET minus the body, so probes and
  // scrapers that preflight with HEAD see real headers instead of
  // counting as obs.admin.errors.
  const bool head_only = request.method == "HEAD";
  if (request.method != "GET" && !head_only) {
    errors->Increment();
    AdminResponse denied{405, "text/plain; charset=utf-8",
                         "GET or HEAD only\n", {}};
    denied.headers.emplace_back("Allow", "GET, HEAD");
    WriteResponse(fd, denied, false);
    return;
  }
  const auto it = handlers_.find(request.path);
  if (it == handlers_.end()) {
    errors->Increment();
    WriteResponse(fd, {404, "text/plain; charset=utf-8", "not found\n", {}},
                  head_only);
    return;
  }
  registry.GetCounter("obs.admin.endpoint." + EndpointKey(request.path))
      ->Increment();
  AdminResponse response = it->second(request);
  if (response.status >= 400) errors->Increment();
  WriteResponse(fd, response, head_only);
}

}  // namespace topkdup::obs
