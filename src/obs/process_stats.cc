#include "obs/process_stats.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdio>

#include "common/metrics.h"

namespace topkdup::obs {

ProcessSelfStats ReadProcessSelfStats() {
  ProcessSelfStats stats;

  // /proc/self/statm: size resident shared text lib data dt (pages).
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    unsigned long long size_pages = 0;
    unsigned long long resident_pages = 0;
    if (std::fscanf(statm, "%llu %llu", &size_pages, &resident_pages) == 2) {
      const long page = ::sysconf(_SC_PAGESIZE);
      stats.rss_bytes =
          resident_pages * static_cast<uint64_t>(page > 0 ? page : 4096);
    }
    std::fclose(statm);
  }

  if (DIR* fds = ::opendir("/proc/self/fd")) {
    uint64_t count = 0;
    while (dirent* entry = ::readdir(fds)) {
      if (entry->d_name[0] == '.') continue;
      ++count;
    }
    ::closedir(fds);
    // Exclude the directory fd opendir itself holds.
    stats.open_fds = count > 0 ? count - 1 : 0;
  }

  auto& registry = metrics::Registry::Global();
  registry.GetGauge("process.rss_bytes")
      ->Set(static_cast<double>(stats.rss_bytes));
  registry.GetGauge("process.open_fds")
      ->Set(static_cast<double>(stats.open_fds));
  return stats;
}

}  // namespace topkdup::obs
