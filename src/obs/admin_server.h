#ifndef TOPKDUP_OBS_ADMIN_SERVER_H_
#define TOPKDUP_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace topkdup::obs {

/// Options for the embedded admin HTTP server.
struct AdminServerOptions {
  /// TCP port to listen on. 0 asks the kernel for an ephemeral port;
  /// port() reports the bound port after Start() succeeds — the pattern
  /// CI smoke jobs use to avoid port collisions.
  int port = 0;
  /// Listen address. The default binds loopback only: the admin plane
  /// exposes metrics, health, traces, and query debug payloads, none of
  /// which should face a network without an operator opting in.
  std::string bind_address = "127.0.0.1";
  int backlog = 16;
  /// Per-connection socket receive/send timeout — a stuck client can
  /// stall the single accept loop for at most this long.
  int io_timeout_ms = 2000;
};

/// One parsed admin request, as handed to handlers. The target's query
/// string is split into `params` with plain '&'/'=' splitting (admin URLs
/// are operator-typed; no percent-decoding).
struct AdminRequest {
  std::string method;  // "GET" or "HEAD".
  std::string path;    // Target with the query string stripped.
  std::string query;   // Raw query string, without the '?'.
  std::map<std::string, std::string> params;

  /// Parameter value, or `fallback` when absent.
  const std::string& Param(const std::string& key,
                           const std::string& fallback) const {
    const auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
};

/// One endpoint's reply. Handlers return the full body; the server frames
/// it as an HTTP/1.1 response with Content-Length and Connection: close.
/// For HEAD requests the body is measured for Content-Length but not
/// sent, per RFC 9110 — handlers never see the difference.
struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. Allow on 405). Names must be valid
  /// HTTP header names; the server emits them verbatim.
  std::vector<std::pair<std::string, std::string>> headers;
};

using AdminHandler = std::function<AdminResponse(const AdminRequest&)>;

/// Dependency-free embedded HTTP/1.1 server for live introspection:
/// plain POSIX sockets, one blocking accept loop on its own thread, one
/// connection served at a time, GET and HEAD only (HEAD runs the handler
/// and sends the headers it would have produced, body elided; anything
/// else gets 405 with an Allow header), exact-path routing. This is an
/// admin plane, not a web server — the load it must survive is a handful
/// of scrapers and an operator with curl, and the simplest correct thing
/// is a serial loop that can never interleave handler state.
///
/// Lifecycle: construct → Handle() for each endpoint → Start() → Stop()
/// (or destruction). Handlers must be registered before Start(); the
/// routing table is read-only while the loop runs, which is what makes
/// concurrent registration-free serving lock-free.
///
/// The loop polls the listen socket with a 100ms timeout between accepts
/// so Stop() is honored promptly without signals or self-pipes.
///
/// Counters: obs.admin.requests (every parsed request),
/// obs.admin.endpoint.<key> (per matched endpoint; key is the path with
/// non-alphanumerics folded to '_'), obs.admin.errors (any non-2xx
/// disposition: bad parse, wrong method, unknown path, handler failure).
class AdminServer {
 public:
  explicit AdminServer(AdminServerOptions options = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers `handler` for exact path `path` (e.g. "/metrics").
  /// Must be called before Start().
  void Handle(std::string path, AdminHandler handler);

  /// Convenience overload for endpoints that ignore the request.
  void Handle(std::string path, std::function<AdminResponse()> handler);

  /// Binds, listens, and starts the accept loop thread. Fails if the
  /// port is taken or the server already started.
  Status Start();

  /// Stops the accept loop and joins the thread. Idempotent.
  void Stop();

  /// The bound port after a successful Start() (resolves port 0), or 0.
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void Loop();
  void ServeConnection(int fd);

  AdminServerOptions options_;
  std::map<std::string, AdminHandler> handlers_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace topkdup::obs

#endif  // TOPKDUP_OBS_ADMIN_SERVER_H_
