#include "obs/explain.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/strings.h"

namespace topkdup::obs {

namespace {

/// Per-report cap on stored detail events (sampled merges + prune
/// decisions + embedding picks). Summaries are exact regardless; the cap
/// only bounds report memory on huge inputs at sample_rate 1.0.
constexpr size_t kMaxDetailEvents = size_t{1} << 18;

/// splitmix64 finalizer: a fixed bijective mix, so sampling depends only
/// on the event key, never on thread schedule or RNG state.
uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// JSON number from a double: integral values print plainly, others with
/// enough digits to round-trip the comparisons the report documents.
std::string JsonNumber(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 4.6e18) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += StrFormat("\\u%04x", c);
    } else {
      out->push_back(c);
    }
  }
}

std::string JsonString(std::string_view s) {
  std::string out = "\"";
  AppendEscaped(&out, s);
  out += "\"";
  return out;
}

void AppendSizeArray(std::string* out, const std::vector<size_t>& values) {
  *out += "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out += ",";
    *out += StrFormat("%zu", values[i]);
  }
  *out += "]";
}

}  // namespace

const char* PruneVerdictName(PruneVerdict verdict) {
  switch (verdict) {
    case PruneVerdict::kKeptOwnWeight:
      return "kept_own_weight";
    case PruneVerdict::kKeptBoundEarlyExit:
      return "kept_bound_early_exit";
    case PruneVerdict::kKeptBoundFull:
      return "kept_bound_full";
    case PruneVerdict::kPrunedBoundBelowM:
      return "pruned_bound_below_M";
  }
  return "unknown";
}

std::string ExplainReport::ToJson() const {
  std::string out;
  out += StrFormat("{\"schema_version\":%d", kSchemaVersion);
  // Conditional so reports from non-serve paths (query_id == 0) stay
  // byte-identical to documents rendered before the field existed.
  if (query_id != 0) {
    out += StrFormat(",\"query_id\":%llu",
                     static_cast<unsigned long long>(query_id));
  }
  if (epoch != 0) {
    out += StrFormat(",\"epoch\":%llu",
                     static_cast<unsigned long long>(epoch));
  }
  out += StrFormat(",\"sample_rate\":%s", JsonNumber(sample_rate).c_str());
  out += ",\"levels\":[";
  for (size_t l = 0; l < levels.size(); ++l) {
    const LevelExplain& lv = levels[l];
    if (l > 0) out += ",";
    out += StrFormat("{\"level\":%d,\"sufficient_predicate\":%s,"
                     "\"necessary_predicate\":%s",
                     lv.level, JsonString(lv.sufficient_predicate).c_str(),
                     JsonString(lv.necessary_predicate).c_str());
    out += StrFormat(",\"collapse\":{\"groups_in\":%zu,\"groups_out\":%zu,"
                     "\"sampled_merges\":[",
                     lv.collapse.groups_in, lv.collapse.groups_out);
    for (size_t i = 0; i < lv.collapse.sampled_merges.size(); ++i) {
      const CollapseMergeExplain& m = lv.collapse.sampled_merges[i];
      if (i > 0) out += ",";
      out += StrFormat(
          "{\"winner_rep\":%zu,\"loser_rep\":%zu,\"winner_weight\":%s,"
          "\"loser_weight\":%s}",
          m.winner_rep, m.loser_rep, JsonNumber(m.winner_weight).c_str(),
          JsonNumber(m.loser_weight).c_str());
    }
    out += "]}";
    if (lv.has_lower_bound) {
      const LevelLowerBoundExplain& lb = lv.lower_bound;
      out += StrFormat(
          ",\"lower_bound\":{\"m\":%zu,\"M\":%s,\"certified\":%s,"
          "\"edges_examined\":%zu,\"cpn_evaluations\":%zu,\"probes\":[",
          lb.m, JsonNumber(lb.M).c_str(), lb.certified ? "true" : "false",
          lb.edges_examined, lb.cpn_evaluations);
      for (size_t i = 0; i < lb.probes.size(); ++i) {
        const CpnProbeExplain& p = lb.probes[i];
        if (i > 0) out += ",";
        out += StrFormat("{\"prefix\":%zu,\"bound\":%d,\"phase\":%s}",
                         p.prefix, p.bound, JsonString(p.phase).c_str());
      }
      out += "]}";
      const LevelPruneExplain& pr = lv.prune;
      out += StrFormat(
          ",\"prune\":{\"passes\":%d,\"M\":%s,\"groups_in\":%zu,"
          "\"groups_pruned\":%zu,\"groups_out\":%zu,\"sampled_decisions\":[",
          pr.passes, JsonNumber(pr.M).c_str(), pr.groups_in,
          pr.groups_pruned, pr.groups_out);
      for (size_t i = 0; i < pr.sampled_decisions.size(); ++i) {
        const PruneDecisionExplain& d = pr.sampled_decisions[i];
        if (i > 0) out += ",";
        out += StrFormat(
            "{\"pass\":%d,\"group\":%zu,\"rep\":%zu,\"weight\":%s,"
            "\"upper_bound\":%s,\"M\":%s,\"neighbors_contributing\":%zu,"
            "\"survived\":%s,\"verdict\":\"%s\"}",
            d.pass, d.group, d.rep, JsonNumber(d.weight).c_str(),
            JsonNumber(d.upper_bound).c_str(), JsonNumber(d.M).c_str(),
            d.neighbors_contributing, d.survived ? "true" : "false",
            PruneVerdictName(d.verdict));
      }
      out += "]}";
    }
    out += "}";
  }
  out += "]";
  if (has_embedding) {
    out += StrFormat(
        ",\"embedding\":{\"items\":%zu,\"alpha\":%s,\"regions\":%zu,"
        "\"sampled_picks\":[",
        embedding.items, JsonNumber(embedding.alpha).c_str(),
        embedding.regions);
    for (size_t i = 0; i < embedding.sampled_picks.size(); ++i) {
      const EmbeddingPickExplain& p = embedding.sampled_picks[i];
      if (i > 0) out += ",";
      out += StrFormat(
          "{\"step\":%zu,\"item\":%zu,\"affinity\":%s,\"runner_up\":%zu,"
          "\"runner_up_affinity\":%s,\"new_region\":%s}",
          p.step, p.item, JsonNumber(p.affinity).c_str(), p.runner_up,
          JsonNumber(p.runner_up_affinity).c_str(),
          p.new_region ? "true" : "false");
    }
    out += "]}";
  }
  if (has_segment_dp) {
    out += StrFormat(
        ",\"segment_dp\":{\"rows\":%zu,\"band\":%zu,\"cells_filled\":%zu,"
        "\"answers_found\":%zu,\"best_boundaries\":",
        segment_dp.rows, segment_dp.band, segment_dp.cells_filled,
        segment_dp.answers_found);
    AppendSizeArray(&out, segment_dp.best_boundaries);
    out += ",\"runner_up_boundaries\":";
    AppendSizeArray(&out, segment_dp.runner_up_boundaries);
    out += "}";
  }
  out += ",\"answers\":[";
  for (size_t a = 0; a < answers.size(); ++a) {
    const AnswerExplain& ans = answers[a];
    if (a > 0) out += ",";
    out += StrFormat(
        "{\"rank\":%d,\"score\":%s,\"threshold\":%s,\"posterior\":%s,"
        "\"groups\":[",
        ans.rank, JsonNumber(ans.score).c_str(),
        JsonNumber(ans.threshold).c_str(),
        JsonNumber(ans.posterior).c_str());
    for (size_t g = 0; g < ans.groups.size(); ++g) {
      const AnswerGroupExplain& ag = ans.groups[g];
      if (g > 0) out += ",";
      out += StrFormat(
          "{\"weight\":%s,\"representative\":%zu,\"member_count\":%zu,"
          "\"span_begin\":%zu,\"span_end\":%zu,\"segment_score\":%s}",
          JsonNumber(ag.weight).c_str(), ag.representative, ag.member_count,
          ag.span_begin, ag.span_end, JsonNumber(ag.segment_score).c_str());
    }
    out += "]}";
  }
  out += "]";
  if (has_degradation) {
    out += StrFormat(
        ",\"degradation\":{\"stage\":%s,\"level\":%d,\"reason\":%s,"
        "\"work_done\":%llu,\"work_budget\":%llu,\"partial_stage\":%s}",
        JsonString(degradation.stage).c_str(), degradation.level,
        JsonString(degradation.reason).c_str(),
        static_cast<unsigned long long>(degradation.work_done),
        static_cast<unsigned long long>(degradation.work_budget),
        degradation.partial_stage ? "true" : "false");
  }
  if (has_resources) {
    out += StrFormat(",\"resources\":{\"cpu_ms\":%.4f,\"stages_ms\":{",
                     resources.cpu_ms);
    for (size_t i = 0; i < resources.stages_ms.size(); ++i) {
      if (i > 0) out += ",";
      out += StrFormat("%s:%.4f",
                       JsonString(resources.stages_ms[i].first).c_str(),
                       resources.stages_ms[i].second);
    }
    out += "}}";
  }
  out += StrFormat(",\"events_dropped\":%zu}", events_dropped);
  return out;
}

std::string ExplainReport::ToText() const {
  std::string out;
  out += StrFormat("explain report (schema v%d, sample_rate=%.3f)\n",
                   kSchemaVersion, sample_rate);
  if (query_id != 0) {
    out += StrFormat("query_id %llu\n",
                     static_cast<unsigned long long>(query_id));
  }
  if (epoch != 0) {
    out += StrFormat("epoch %llu\n",
                     static_cast<unsigned long long>(epoch));
  }
  for (const LevelExplain& lv : levels) {
    out += StrFormat("level %d\n", lv.level);
    out += StrFormat("  collapse [%s]: %zu -> %zu groups\n",
                     lv.sufficient_predicate.empty()
                         ? "-"
                         : lv.sufficient_predicate.c_str(),
                     lv.collapse.groups_in, lv.collapse.groups_out);
    for (const CollapseMergeExplain& m : lv.collapse.sampled_merges) {
      out += StrFormat(
          "    merge: rep %zu (w=%.1f) absorbed rep %zu (w=%.1f)\n",
          m.winner_rep, m.winner_weight, m.loser_rep, m.loser_weight);
    }
    if (lv.has_lower_bound) {
      const LevelLowerBoundExplain& lb = lv.lower_bound;
      out += StrFormat(
          "  lower bound [%s]: m=%zu fixed M=%.3f (%s; %zu edges, "
          "%zu CPN evaluations)\n",
          lv.necessary_predicate.empty() ? "-"
                                         : lv.necessary_predicate.c_str(),
          lb.m, lb.M, lb.certified ? "certified" : "uncertified",
          lb.edges_examined, lb.cpn_evaluations);
      for (const CpnProbeExplain& p : lb.probes) {
        out += StrFormat("    probe (%s): prefix %zu -> CPN bound %d\n",
                         p.phase.c_str(), p.prefix, p.bound);
      }
      const LevelPruneExplain& pr = lv.prune;
      out += StrFormat(
          "  prune: %zu -> %zu groups (%zu pruned against M=%.3f, "
          "%d passes)\n",
          pr.groups_in, pr.groups_out, pr.groups_pruned, pr.M, pr.passes);
      for (const PruneDecisionExplain& d : pr.sampled_decisions) {
        out += StrFormat(
            "    pass %d group %zu (rep %zu, w=%.1f): bound %.3f vs "
            "M=%.3f via %zu neighbors -> %s\n",
            d.pass, d.group, d.rep, d.weight, d.upper_bound, d.M,
            d.neighbors_contributing, PruneVerdictName(d.verdict));
      }
    }
  }
  if (has_embedding) {
    out += StrFormat("embedding: %zu items, alpha=%.3f, %zu regions\n",
                     embedding.items, embedding.alpha, embedding.regions);
    for (const EmbeddingPickExplain& p : embedding.sampled_picks) {
      if (p.new_region) {
        out += StrFormat("  step %zu: item %zu seeds a new region\n",
                         p.step, p.item);
      } else if (p.runner_up >= embedding.items) {
        out += StrFormat(
            "  step %zu: item %zu placed (aged affinity %.4f, "
            "unopposed)\n",
            p.step, p.item, p.affinity);
      } else {
        out += StrFormat(
            "  step %zu: item %zu placed (aged affinity %.4f) over item "
            "%zu (%.4f)\n",
            p.step, p.item, p.affinity, p.runner_up, p.runner_up_affinity);
      }
    }
  }
  if (has_segment_dp) {
    out += StrFormat(
        "segment DP: %zu x %zu table, %zu cells filled, %zu answers\n",
        segment_dp.rows, segment_dp.band, segment_dp.cells_filled,
        segment_dp.answers_found);
    auto boundary_line = [&](const char* label,
                             const std::vector<size_t>& ends) {
      if (ends.empty()) return;
      out += StrFormat("  %s boundaries (span ends):", label);
      for (size_t e : ends) out += StrFormat(" %zu", e);
      out += "\n";
    };
    boundary_line("best", segment_dp.best_boundaries);
    boundary_line("runner-up", segment_dp.runner_up_boundaries);
  }
  for (const AnswerExplain& ans : answers) {
    out += StrFormat(
        "answer %d: score=%.4f threshold=%.3f posterior=%.4f\n", ans.rank,
        ans.score, ans.threshold, ans.posterior);
    for (const AnswerGroupExplain& ag : ans.groups) {
      out += StrFormat(
          "  group rep %zu: weight=%.1f members=%zu span=[%zu,%zu] "
          "segment score %.4f\n",
          ag.representative, ag.weight, ag.member_count, ag.span_begin,
          ag.span_end, ag.segment_score);
    }
  }
  if (has_degradation) {
    out += StrFormat(
        "degraded: deadline expired (%s) in stage %s at level %d (%s)\n",
        degradation.reason.c_str(), degradation.stage.c_str(),
        degradation.level,
        degradation.partial_stage ? "mid-stage" : "stage boundary");
    if (degradation.work_budget > 0) {
      out += StrFormat("  work: %llu charged of %llu budgeted\n",
                       static_cast<unsigned long long>(degradation.work_done),
                       static_cast<unsigned long long>(
                           degradation.work_budget));
    }
  }
  if (has_resources) {
    out += StrFormat("resources: %.4f ms CPU\n", resources.cpu_ms);
    for (const auto& [stage, ms] : resources.stages_ms) {
      out += StrFormat("  %s: %.4f ms\n", stage.c_str(), ms);
    }
  }
  if (events_dropped > 0) {
    out += StrFormat("(%zu detail events dropped past the cap)\n",
                     events_dropped);
  }
  return out;
}

ExplainRecorder::ExplainRecorder(double sample_rate)
    : sample_rate_(sample_rate) {
  report_.sample_rate = sample_rate;
}

void ExplainRecorder::set_query_id(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  report_.query_id = query_id;
}

bool ExplainRecorder::SampleKey(uint64_t key) const {
  if (sample_rate_ >= 1.0) return true;
  if (sample_rate_ <= 0.0) return false;
  // Top 53 mixed bits as a uniform double in [0, 1).
  const double u =
      static_cast<double>(MixKey(key) >> 11) * 0x1.0p-53;
  return u < sample_rate_;
}

LevelExplain& ExplainRecorder::CurrentLevelLocked() {
  if (report_.levels.empty()) {
    LevelExplain level;
    level.level = 0;
    report_.levels.push_back(std::move(level));
  }
  return report_.levels.back();
}

bool ExplainRecorder::AdmitDetailLocked() {
  if (detail_events_ >= kMaxDetailEvents) {
    ++report_.events_dropped;
    return false;
  }
  ++detail_events_;
  return true;
}

void ExplainRecorder::BeginLevel(std::string sufficient_predicate,
                                 std::string necessary_predicate,
                                 bool has_lower_bound) {
  std::lock_guard<std::mutex> lock(mu_);
  LevelExplain level;
  level.level = static_cast<int>(report_.levels.size());
  level.sufficient_predicate = std::move(sufficient_predicate);
  level.necessary_predicate = std::move(necessary_predicate);
  level.has_lower_bound = has_lower_bound;
  report_.levels.push_back(std::move(level));
}

void ExplainRecorder::RecordCollapseSummary(size_t groups_in,
                                            size_t groups_out) {
  std::lock_guard<std::mutex> lock(mu_);
  LevelCollapseExplain& collapse = CurrentLevelLocked().collapse;
  collapse.groups_in = groups_in;
  collapse.groups_out = groups_out;
}

void ExplainRecorder::RecordCollapseMerge(
    const CollapseMergeExplain& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!AdmitDetailLocked()) return;
  CurrentLevelLocked().collapse.sampled_merges.push_back(event);
}

void ExplainRecorder::RecordCpnProbe(size_t prefix, int bound,
                                     const char* phase) {
  std::lock_guard<std::mutex> lock(mu_);
  CurrentLevelLocked().lower_bound.probes.push_back(
      {prefix, bound, std::string(phase)});
}

void ExplainRecorder::RecordLowerBound(size_t m, double M, bool certified,
                                       size_t edges_examined,
                                       size_t cpn_evaluations) {
  std::lock_guard<std::mutex> lock(mu_);
  LevelLowerBoundExplain& lb = CurrentLevelLocked().lower_bound;
  lb.m = m;
  lb.M = M;
  lb.certified = certified;
  lb.edges_examined = edges_examined;
  lb.cpn_evaluations = cpn_evaluations;
}

void ExplainRecorder::RecordPruneSummary(int passes, double M,
                                         size_t groups_in,
                                         size_t groups_out) {
  std::lock_guard<std::mutex> lock(mu_);
  LevelPruneExplain& prune = CurrentLevelLocked().prune;
  prune.passes = passes;
  prune.M = M;
  prune.groups_in = groups_in;
  prune.groups_out = groups_out;
  prune.groups_pruned = groups_in - groups_out;
}

void ExplainRecorder::RecordPruneDecision(
    const PruneDecisionExplain& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!AdmitDetailLocked()) return;
  CurrentLevelLocked().prune.sampled_decisions.push_back(event);
}

void ExplainRecorder::RecordEmbeddingSummary(size_t items, double alpha,
                                             size_t regions) {
  std::lock_guard<std::mutex> lock(mu_);
  report_.has_embedding = true;
  report_.embedding.items = items;
  report_.embedding.alpha = alpha;
  report_.embedding.regions = regions;
}

void ExplainRecorder::RecordEmbeddingPick(
    const EmbeddingPickExplain& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!AdmitDetailLocked()) return;
  report_.has_embedding = true;
  report_.embedding.sampled_picks.push_back(event);
}

void ExplainRecorder::RecordSegmentDp(SegmentDpExplain summary) {
  std::lock_guard<std::mutex> lock(mu_);
  report_.has_segment_dp = true;
  report_.segment_dp = std::move(summary);
}

void ExplainRecorder::RecordAnswer(AnswerExplain answer) {
  std::lock_guard<std::mutex> lock(mu_);
  report_.answers.push_back(std::move(answer));
}

void ExplainRecorder::RecordDegradation(const DegradationInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  if (report_.has_degradation) return;
  report_.has_degradation = true;
  report_.degradation.stage = info.stage;
  report_.degradation.level = info.level;
  report_.degradation.reason = DeadlineReasonName(info.reason);
  report_.degradation.work_done = info.work_done;
  report_.degradation.work_budget = info.work_budget;
  report_.degradation.partial_stage = info.partial_stage;
}

ExplainReport ExplainRecorder::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  for (LevelExplain& level : report_.levels) {
    // Concurrent sections get a canonical order so the report is
    // byte-identical at any thread count (same contract as §6b).
    std::sort(level.prune.sampled_decisions.begin(),
              level.prune.sampled_decisions.end(),
              [](const PruneDecisionExplain& a,
                 const PruneDecisionExplain& b) {
                if (a.pass != b.pass) return a.pass < b.pass;
                return a.group < b.group;
              });
    std::sort(level.collapse.sampled_merges.begin(),
              level.collapse.sampled_merges.end(),
              [](const CollapseMergeExplain& a,
                 const CollapseMergeExplain& b) {
                if (a.winner_rep != b.winner_rep) {
                  return a.winner_rep < b.winner_rep;
                }
                return a.loser_rep < b.loser_rep;
              });
  }
  std::sort(report_.answers.begin(), report_.answers.end(),
            [](const AnswerExplain& a, const AnswerExplain& b) {
              return a.rank < b.rank;
            });
  return std::move(report_);
}

}  // namespace topkdup::obs
