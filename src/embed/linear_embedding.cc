#include "embed/linear_embedding.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/agglomerative.h"
#include "common/check.h"
#include "common/rng.h"

namespace topkdup::embed {

std::vector<size_t> GreedyEmbedding(const cluster::PairScores& scores,
                                    const std::vector<double>& weights,
                                    const GreedyEmbeddingOptions& options) {
  const size_t n = scores.item_count();
  TOPKDUP_CHECK(options.alpha > 0.0 && options.alpha <= 1.0);
  TOPKDUP_CHECK(weights.empty() || weights.size() == n);
  std::vector<size_t> order;
  if (n == 0) return order;
  order.reserve(n);

  auto weight_of = [&](size_t k) {
    return weights.empty() ? 0.0 : weights[k];
  };

  // Aged affinity of each unplaced item to the placed prefix, kept lazily:
  // the true affinity at step i is value[k] * alpha^(i - stamp[k]).
  std::vector<double> value(n, 0.0);
  std::vector<size_t> stamp(n, 0);
  std::vector<bool> placed(n, false);

  auto pick_seed = [&]() {
    size_t best = n;
    for (size_t k = 0; k < n; ++k) {
      if (placed[k]) continue;
      if (best == n || weight_of(k) > weight_of(best) ||
          (weight_of(k) == weight_of(best) && k < best)) {
        best = k;
      }
    }
    return best;
  };

  size_t regions = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t chosen = n;
    // Sampled by step index, so the recorded picks are the same for a
    // given input regardless of how the caller parallelized upstream.
    const bool record_pick = options.recorder != nullptr &&
                             options.recorder->SampleKey(i);
    double best_affinity = 0.0;
    size_t runner_up = n;
    double runner_up_affinity = 0.0;
    if (!order.empty()) {
      for (size_t k = 0; k < n; ++k) {
        if (placed[k]) continue;
        const double aged =
            value[k] * std::pow(options.alpha,
                                static_cast<double>(i - stamp[k]));
        if (aged > best_affinity ||
            (aged == best_affinity && aged > 0.0 && chosen != n &&
             weight_of(k) > weight_of(chosen))) {
          if (record_pick && chosen != n) {
            runner_up = chosen;
            runner_up_affinity = best_affinity;
          }
          best_affinity = aged;
          chosen = k;
        } else if (record_pick && aged > runner_up_affinity && k != chosen) {
          runner_up = k;
          runner_up_affinity = aged;
        }
      }
    }
    const bool new_region = chosen == n;
    if (new_region) {
      chosen = pick_seed();
      ++regions;
    }
    if (record_pick) {
      options.recorder->RecordEmbeddingPick(
          {i, chosen, new_region ? 0.0 : best_affinity, runner_up,
           runner_up_affinity, new_region});
    }

    placed[chosen] = true;
    order.push_back(chosen);
    // Fold the newly placed item's similarities into its unplaced
    // neighbors' affinities at the current timestamp.
    for (const auto& [other, s] : scores.Neighbors(chosen)) {
      if (placed[other]) continue;
      value[other] *= std::pow(options.alpha,
                               static_cast<double>(i + 1 - stamp[other]));
      stamp[other] = i + 1;
      value[other] += s;
    }
  }
  if (options.recorder != nullptr) {
    options.recorder->RecordEmbeddingSummary(n, options.alpha, regions);
  }
  return order;
}

double ArrangementCost(const std::vector<size_t>& order,
                       const cluster::PairScores& scores) {
  std::vector<size_t> pos(scores.item_count(), 0);
  for (size_t p = 0; p < order.size(); ++p) pos[order[p]] = p;
  double cost = 0.0;
  for (size_t i = 0; i < scores.item_count(); ++i) {
    for (const auto& [j, s] : scores.Neighbors(i)) {
      if (j <= i || s <= 0.0) continue;
      const double dist = pos[i] > pos[j]
                              ? static_cast<double>(pos[i] - pos[j])
                              : static_cast<double>(pos[j] - pos[i]);
      cost += dist * s;
    }
  }
  return cost;
}

std::vector<size_t> HierarchyEmbedding(const cluster::PairScores& scores,
                                       size_t max_items) {
  auto result = cluster::Agglomerate(scores, cluster::Linkage::kAverage,
                                     /*stop_threshold=*/0.0, max_items);
  if (!result.ok()) return GreedyEmbedding(scores);
  return cluster::DendrogramLeafOrder(result.value().merges,
                                      scores.item_count());
}

std::vector<size_t> SpectralEmbedding(const cluster::PairScores& scores,
                                      const SpectralEmbeddingOptions& options) {
  const size_t n = scores.item_count();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  if (n <= 2) return order;

  // Positive-part similarity graph, degrees, Laplacian spectral bound.
  std::vector<double> degree(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (const auto& [j, s] : scores.Neighbors(i)) {
      (void)j;
      if (s > 0.0) degree[i] += s;
    }
  }
  double max_degree = 0.0;
  for (double d : degree) max_degree = std::max(max_degree, d);
  const double shift = 2.0 * max_degree + 1.0;

  // Power iteration on M = shift*I - L restricted to the space orthogonal
  // to the constant vector; the dominant eigenvector there is the Fiedler
  // vector of L.
  Rng rng(options.seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.NextDouble() - 0.5;
  std::vector<double> next(n);

  auto orthogonalize_and_normalize = [&](std::vector<double>* vec) {
    double mean = 0.0;
    for (double x : *vec) mean += x;
    mean /= static_cast<double>(n);
    double norm = 0.0;
    for (double& x : *vec) {
      x -= mean;
      norm += x * x;
    }
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (double& x : *vec) x /= norm;
    }
  };
  orthogonalize_and_normalize(&v);

  for (int it = 0; it < options.power_iterations; ++it) {
    // next = (shift*I - L) v = shift*v - D v + W v.
    for (size_t i = 0; i < n; ++i) {
      next[i] = (shift - degree[i]) * v[i];
    }
    for (size_t i = 0; i < n; ++i) {
      for (const auto& [j, s] : scores.Neighbors(i)) {
        if (s > 0.0) next[i] += s * v[j];
      }
    }
    orthogonalize_and_normalize(&next);
    v.swap(next);
  }

  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (v[a] != v[b]) return v[a] < v[b];
    return a < b;
  });
  return order;
}

}  // namespace topkdup::embed
