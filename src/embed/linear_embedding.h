#ifndef TOPKDUP_EMBED_LINEAR_EMBEDDING_H_
#define TOPKDUP_EMBED_LINEAR_EMBEDDING_H_

#include <vector>

#include "cluster/pair_scores.h"
#include "obs/explain.h"

namespace topkdup::embed {

struct GreedyEmbeddingOptions {
  /// Aging factor alpha of paper Eq. (3): positions j far behind the front
  /// contribute alpha^(i-j-1) of their similarity. In (0, 1].
  double alpha = 0.5;
  /// When non-null, receives the embedding summary plus sampled placement
  /// picks (winning Eq.-3 affinity and the runner-up it beat), keyed by
  /// step so the sampled set is deterministic.
  obs::ExplainRecorder* recorder = nullptr;
};

/// Greedy linear embedding of paper §5.3.1: repeatedly appends the item
/// maximizing the distance-aged similarity to the already-placed items
/// (Eq. 3). When no remaining item has positive affinity to the placed
/// prefix, the heaviest remaining item (by `weights`, or lowest index when
/// weights is empty) starts a new region. Returns a permutation of 0..n-1.
///
/// Only positive pair scores attract; negative scores are treated as
/// repulsion (they subtract affinity), which keeps likely non-duplicates
/// apart in the ordering.
std::vector<size_t> GreedyEmbedding(const cluster::PairScores& scores,
                                    const std::vector<double>& weights = {},
                                    const GreedyEmbeddingOptions& options = {});

/// The linear-arrangement objective sum_{i<j} |pos_i - pos_j| * max(P_ij, 0)
/// that embeddings try to minimize (paper §5.3.1). Used by tests and the
/// embedding ablation bench to compare orderings.
double ArrangementCost(const std::vector<size_t>& order,
                       const cluster::PairScores& scores);

/// Hierarchy-induced embedding (paper §5.2): run average-link agglomerative
/// clustering to a full dendrogram and read the leaves left-to-right. The
/// paper notes segmentations of such an order strictly generalize frontier
/// groupings of the hierarchy. O(n^2) memory — intended for comparisons on
/// moderate inputs; falls back to the greedy embedding when the input
/// exceeds `max_items`.
std::vector<size_t> HierarchyEmbedding(const cluster::PairScores& scores,
                                       size_t max_items = 4096);

struct SpectralEmbeddingOptions {
  int power_iterations = 300;
  uint64_t seed = 42;
};

/// Spectral linear embedding (the alternative cited in §5.3.1): items are
/// sorted by their coordinate in the Fiedler vector (second-smallest
/// eigenvector of the Laplacian of the positive-score similarity graph),
/// computed by power iteration with deflation of the constant vector.
/// O(n^2) per iteration; intended for the ablation bench and comparisons.
std::vector<size_t> SpectralEmbedding(const cluster::PairScores& scores,
                                      const SpectralEmbeddingOptions& options = {});

}  // namespace topkdup::embed

#endif  // TOPKDUP_EMBED_LINEAR_EMBEDDING_H_
