#ifndef TOPKDUP_EVAL_METRICS_H_
#define TOPKDUP_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "cluster/pair_scores.h"

namespace topkdup::eval {

/// Pairwise clustering agreement between a predicted partition and a
/// reference partition: a pair of items is positive when co-clustered in
/// the reference. This is the F1 measure of paper §6.4 ("pairwise F1 value
/// which treats as positive any pair of records that appears in the same
/// cluster in the LP").
struct PairwiseScores {
  int64_t true_positive = 0;
  int64_t false_positive = 0;
  int64_t false_negative = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Computes pairwise agreement in O(n + sum of cluster-intersection sizes)
/// via the contingency counts, never enumerating pairs.
PairwiseScores PairwiseAgreement(const cluster::Labels& predicted,
                                 const cluster::Labels& reference);

/// Convenience: reference taken from ground-truth entity ids (one cluster
/// per distinct id; every item must have a non-negative id).
PairwiseScores PairwiseAgreementToEntities(
    const cluster::Labels& predicted, const std::vector<int64_t>& entity_ids);

}  // namespace topkdup::eval

#endif  // TOPKDUP_EVAL_METRICS_H_
