#include "eval/metrics.h"

#include <unordered_map>

#include "common/check.h"

namespace topkdup::eval {

namespace {

int64_t Choose2(int64_t n) { return n * (n - 1) / 2; }

}  // namespace

double PairwiseScores::Precision() const {
  const int64_t denom = true_positive + false_positive;
  return denom == 0 ? 1.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

double PairwiseScores::Recall() const {
  const int64_t denom = true_positive + false_negative;
  return denom == 0 ? 1.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

double PairwiseScores::F1() const {
  const double p = Precision();
  const double r = Recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

PairwiseScores PairwiseAgreement(const cluster::Labels& predicted,
                                 const cluster::Labels& reference) {
  TOPKDUP_CHECK(predicted.size() == reference.size());
  const cluster::Labels pred = cluster::Canonicalize(predicted);
  const cluster::Labels ref = cluster::Canonicalize(reference);
  const size_t n = pred.size();

  std::unordered_map<int64_t, int64_t> pred_sizes;
  std::unordered_map<int64_t, int64_t> ref_sizes;
  std::unordered_map<int64_t, int64_t> joint;
  for (size_t i = 0; i < n; ++i) {
    ++pred_sizes[pred[i]];
    ++ref_sizes[ref[i]];
    ++joint[(static_cast<int64_t>(pred[i]) << 32) | ref[i]];
  }

  int64_t pred_pairs = 0;
  for (const auto& [label, count] : pred_sizes) pred_pairs += Choose2(count);
  int64_t ref_pairs = 0;
  for (const auto& [label, count] : ref_sizes) ref_pairs += Choose2(count);
  int64_t tp = 0;
  for (const auto& [key, count] : joint) tp += Choose2(count);

  PairwiseScores out;
  out.true_positive = tp;
  out.false_positive = pred_pairs - tp;
  out.false_negative = ref_pairs - tp;
  return out;
}

PairwiseScores PairwiseAgreementToEntities(
    const cluster::Labels& predicted,
    const std::vector<int64_t>& entity_ids) {
  TOPKDUP_CHECK(predicted.size() == entity_ids.size());
  std::unordered_map<int64_t, int> remap;
  cluster::Labels reference(entity_ids.size());
  for (size_t i = 0; i < entity_ids.size(); ++i) {
    TOPKDUP_CHECK(entity_ids[i] >= 0);
    auto [it, inserted] =
        remap.emplace(entity_ids[i], static_cast<int>(remap.size()));
    reference[i] = it->second;
  }
  return PairwiseAgreement(predicted, reference);
}

}  // namespace topkdup::eval
