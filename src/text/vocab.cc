#include "text/vocab.h"

#include <algorithm>
#include <cmath>

namespace topkdup::text {

TokenId Vocabulary::GetOrAdd(std::string_view token) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) return it->second;
  TokenId id = static_cast<TokenId>(strings_.size());
  strings_.emplace_back(token);
  index_.emplace(strings_.back(), id);
  return id;
}

TokenId Vocabulary::Find(std::string_view token) const {
  auto it = index_.find(std::string(token));
  return it == index_.end() ? kInvalidToken : it->second;
}

std::vector<TokenId> Vocabulary::InternAll(
    const std::vector<std::string>& tokens) {
  std::vector<TokenId> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(GetOrAdd(t));
  return out;
}

std::vector<TokenId> Vocabulary::InternSet(
    const std::vector<std::string>& tokens) {
  std::vector<TokenId> out = InternAll(tokens);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void IdfTable::AddDocument(const std::vector<TokenId>& token_set) {
  ++num_docs_;
  for (TokenId id : token_set) {
    if (static_cast<size_t>(id) >= df_.size()) df_.resize(id + 1, 0);
    ++df_[id];
  }
}

double IdfTable::Idf(TokenId id) const {
  const int64_t df = DocumentFrequency(id);
  return std::log(static_cast<double>(num_docs_ + 1) /
                  static_cast<double>(df + 1)) +
         1.0;
}

int64_t IdfTable::DocumentFrequency(TokenId id) const {
  if (id < 0 || static_cast<size_t>(id) >= df_.size()) return 0;
  return df_[id];
}

int SortedIntersectionSize(const std::vector<TokenId>& a,
                           const std::vector<TokenId>& b) {
  int count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace topkdup::text
