#ifndef TOPKDUP_TEXT_INVERTED_INDEX_H_
#define TOPKDUP_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "text/vocab.h"

namespace topkdup::text {

/// Inverted index from token id to the (sorted) list of item ids whose
/// signature set contains the token. This is the only mechanism in the
/// library through which pairs of records are ever enumerated: all blocked
/// predicate evaluation and canopy formation goes through it, never through
/// a Cartesian product.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Inserts an item with the given sorted signature set. Item ids must be
  /// inserted in increasing order (posting lists then stay sorted for free).
  void Add(int64_t item_id, const std::vector<TokenId>& signature);

  /// Invokes `fn(other_id, common)` for every previously *or* subsequently
  /// added item (other than `item_id` itself) sharing at least `min_common`
  /// signature tokens with `signature`; `common` is the exact number of
  /// shared tokens. Each qualifying item is reported exactly once.
  void ForEachCandidate(
      int64_t item_id, const std::vector<TokenId>& signature, int min_common,
      const std::function<void(int64_t other_id, int common)>& fn) const;

  /// Number of postings of a token (0 when unseen).
  size_t PostingSize(TokenId id) const;

  size_t item_count() const { return item_count_; }

 private:
  std::vector<std::vector<int64_t>> postings_;
  size_t item_count_ = 0;
};

}  // namespace topkdup::text

#endif  // TOPKDUP_TEXT_INVERTED_INDEX_H_
