#ifndef TOPKDUP_TEXT_VOCAB_H_
#define TOPKDUP_TEXT_VOCAB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace topkdup::text {

using TokenId = int32_t;
inline constexpr TokenId kInvalidToken = -1;

/// Interns token strings to dense integer ids. Ids are assigned in first-seen
/// order, so a Vocabulary built from the same token stream is deterministic.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `token`, inserting it if unseen.
  TokenId GetOrAdd(std::string_view token);

  /// Returns the id of `token`, or kInvalidToken when absent.
  TokenId Find(std::string_view token) const;

  /// The interned string of an id.
  const std::string& TokenString(TokenId id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

  /// Interns every token of `tokens`, returning ids (with duplicates kept).
  std::vector<TokenId> InternAll(const std::vector<std::string>& tokens);

  /// Interns tokens and returns the deduplicated, sorted id set — the
  /// canonical "signature set" representation used by set-overlap predicates
  /// and similarities.
  std::vector<TokenId> InternSet(const std::vector<std::string>& tokens);

 private:
  std::unordered_map<std::string, TokenId> index_;
  std::vector<std::string> strings_;
};

/// Document-frequency statistics over a corpus of token sets; provides the
/// standard smoothed IDF weight idf(t) = ln((N + 1) / (df(t) + 1)) + 1.
class IdfTable {
 public:
  IdfTable() = default;

  /// Counts each distinct token of the document once.
  void AddDocument(const std::vector<TokenId>& token_set);

  /// IDF of a token; tokens never seen get the maximal (df = 0) weight.
  double Idf(TokenId id) const;

  int64_t document_count() const { return num_docs_; }
  int64_t DocumentFrequency(TokenId id) const;

 private:
  std::vector<int64_t> df_;
  int64_t num_docs_ = 0;
};

/// Number of elements common to two sorted id sets.
int SortedIntersectionSize(const std::vector<TokenId>& a,
                           const std::vector<TokenId>& b);

}  // namespace topkdup::text

#endif  // TOPKDUP_TEXT_VOCAB_H_
