#include "text/inverted_index.h"

#include <unordered_map>

namespace topkdup::text {

void InvertedIndex::Add(int64_t item_id,
                        const std::vector<TokenId>& signature) {
  for (TokenId t : signature) {
    if (static_cast<size_t>(t) >= postings_.size()) postings_.resize(t + 1);
    postings_[t].push_back(item_id);
  }
  ++item_count_;
}

void InvertedIndex::ForEachCandidate(
    int64_t item_id, const std::vector<TokenId>& signature, int min_common,
    const std::function<void(int64_t, int)>& fn) const {
  // Merge-count across the posting lists of the query's tokens.
  std::unordered_map<int64_t, int> counts;
  for (TokenId t : signature) {
    if (t < 0 || static_cast<size_t>(t) >= postings_.size()) continue;
    for (int64_t other : postings_[t]) {
      if (other == item_id) continue;
      ++counts[other];
    }
  }
  for (const auto& [other, common] : counts) {
    if (common >= min_common) fn(other, common);
  }
}

size_t InvertedIndex::PostingSize(TokenId id) const {
  if (id < 0 || static_cast<size_t>(id) >= postings_.size()) return 0;
  return postings_[id].size();
}

}  // namespace topkdup::text
