#ifndef TOPKDUP_TEXT_TOKENIZE_H_
#define TOPKDUP_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace topkdup::text {

/// Lowercases and splits `s` into maximal runs of ASCII alphanumerics.
/// "M. Stonebraker-Jr" -> {"m", "stonebraker", "jr"}.
std::vector<std::string> WordTokens(std::string_view s);

/// Character q-grams of the lowercased, whitespace-normalized string.
/// The string is padded with (q-1) leading and trailing '#' so that short
/// strings still produce q-grams and boundaries are emphasized, the common
/// convention in approximate string joins. Returns an empty vector for an
/// empty input.
std::vector<std::string> QGrams(std::string_view s, int q);

/// First characters of each word token, concatenated in order.
/// "Sunita Sarawagi" -> "ss".
std::string Initials(std::string_view s);

/// Sorted set of first characters of each word token ("Sunita Sarawagi" ->
/// "ss" sorted -> "ss"). Used for order-insensitive initial comparisons.
std::string SortedInitials(std::string_view s);

/// Collapses runs of whitespace to single spaces, trims, and lowercases.
std::string NormalizeText(std::string_view s);

}  // namespace topkdup::text

#endif  // TOPKDUP_TEXT_TOKENIZE_H_
