#include "text/tokenize.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"

namespace topkdup::text {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::vector<std::string> WordTokens(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (IsWordChar(c)) {
      cur.push_back(LowerChar(c));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::vector<std::string> QGrams(std::string_view s, int q) {
  TOPKDUP_CHECK(q >= 1);
  const std::string norm = NormalizeText(s);
  if (norm.empty()) return {};
  std::string padded;
  padded.reserve(norm.size() + 2 * static_cast<size_t>(q - 1));
  padded.append(static_cast<size_t>(q - 1), '#');
  padded.append(norm);
  padded.append(static_cast<size_t>(q - 1), '#');
  std::vector<std::string> out;
  if (padded.size() < static_cast<size_t>(q)) return out;
  out.reserve(padded.size() - static_cast<size_t>(q) + 1);
  for (size_t i = 0; i + static_cast<size_t>(q) <= padded.size(); ++i) {
    out.push_back(padded.substr(i, static_cast<size_t>(q)));
  }
  return out;
}

std::string Initials(std::string_view s) {
  std::string out;
  for (const std::string& w : WordTokens(s)) out.push_back(w[0]);
  return out;
}

std::string SortedInitials(std::string_view s) {
  std::string out = Initials(s);
  std::sort(out.begin(), out.end());
  return out;
}

std::string NormalizeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool pending_space = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!out.empty()) pending_space = true;
    } else {
      if (pending_space) {
        out.push_back(' ');
        pending_space = false;
      }
      out.push_back(LowerChar(c));
    }
  }
  return out;
}

}  // namespace topkdup::text
