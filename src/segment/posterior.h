#ifndef TOPKDUP_SEGMENT_POSTERIOR_H_
#define TOPKDUP_SEGMENT_POSTERIOR_H_

#include <vector>

#include "common/status.h"
#include "segment/segment_scorer.h"
#include "segment/topk_dp.h"

namespace topkdup::segment {

/// §5 defines the score of a TopK answer as the *sum* of the scores of all
/// groupings whose K largest clusters are the answer, with scores
/// normalizable to probabilities through a Gibbs distribution. Within the
/// segmentation space that quantity is exactly computable: this module
/// provides the partition function and per-answer posteriors under
///
///   P(segmentation) proportional to exp(score(segmentation) / temperature)
///
/// restricted to segmentations whose segments are at most the scorer's
/// band long.
struct PosteriorOptions {
  /// Gibbs temperature: lower concentrates mass on the best segmentation.
  double temperature = 1.0;
};

/// log sum over all segmentations of exp(score / T). O(n * band).
double LogPartitionFunction(const SegmentScorer& scorer,
                            const PosteriorOptions& options = {});

/// Log of the total Gibbs mass of segmentations *consistent with* the
/// answer: the answer's spans appear as segments, and every other segment
/// weighs at most the answer's threshold (so the answer spans are the K
/// largest groups). Returns -inf when no consistent segmentation exists.
StatusOr<double> LogAnswerMass(const SegmentScorer& scorer,
                               const std::vector<size_t>& order,
                               const std::vector<double>& weights,
                               const TopKAnswer& answer,
                               const PosteriorOptions& options = {});

/// Posterior probability of the answer: exp(LogAnswerMass - LogZ).
/// This is the paper's "R most probable answers" semantics made exact
/// within the segmentation space.
StatusOr<double> AnswerPosterior(const SegmentScorer& scorer,
                                 const std::vector<size_t>& order,
                                 const std::vector<double>& weights,
                                 const TopKAnswer& answer,
                                 const PosteriorOptions& options = {});

}  // namespace topkdup::segment

#endif  // TOPKDUP_SEGMENT_POSTERIOR_H_
