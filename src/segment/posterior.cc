#include "segment/posterior.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace topkdup::segment {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double LogSumExp(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

}  // namespace

double LogPartitionFunction(const SegmentScorer& scorer,
                            const PosteriorOptions& options) {
  TOPKDUP_CHECK(options.temperature > 0.0);
  const size_t n = scorer.size();
  const size_t band = scorer.band();
  if (n == 0) return 0.0;  // One (empty) segmentation with score 0.
  std::vector<double> alpha(n + 1, kNegInf);
  alpha[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= std::min(band, i); ++j) {
      alpha[i] = LogSumExp(
          alpha[i],
          alpha[i - j] + scorer.Score(i - j, i - 1) / options.temperature);
    }
  }
  return alpha[n];
}

StatusOr<double> LogAnswerMass(const SegmentScorer& scorer,
                               const std::vector<size_t>& order,
                               const std::vector<double>& weights,
                               const TopKAnswer& answer,
                               const PosteriorOptions& options) {
  if (options.temperature <= 0.0) {
    return Status::InvalidArgument("LogAnswerMass: temperature must be > 0");
  }
  const size_t n = scorer.size();
  const size_t band = scorer.band();
  if (order.size() != n || weights.size() < n) {
    return Status::InvalidArgument(
        "LogAnswerMass: order/weights sizes do not match the scorer");
  }

  // Mark forced boundaries: positions covered by answer spans must be
  // segmented exactly as those spans.
  // forced_begin[p] = the answer span starting at p (by index), or -1.
  std::vector<int> span_at(n, -1);
  std::vector<bool> covered(n, false);
  for (size_t s = 0; s < answer.answer.size(); ++s) {
    const Span& span = answer.answer[s];
    if (span.end >= n || span.begin > span.end) {
      return Status::InvalidArgument("LogAnswerMass: span out of range");
    }
    for (size_t p = span.begin; p <= span.end; ++p) {
      if (covered[p]) {
        return Status::InvalidArgument("LogAnswerMass: overlapping spans");
      }
      covered[p] = true;
    }
    span_at[span.begin] = static_cast<int>(s);
  }

  std::vector<double> prefix(n + 1, 0.0);
  for (size_t p = 0; p < n; ++p) {
    prefix[p + 1] = prefix[p] + weights[order[p]];
  }
  auto span_weight = [&](size_t begin, size_t end) {
    return prefix[end + 1] - prefix[begin];
  };

  std::vector<double> alpha(n + 1, kNegInf);
  alpha[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    // Case 1: the segment ending at i-1 is one of the answer spans.
    for (size_t j = 1; j <= std::min(band, i); ++j) {
      const size_t begin = i - j;
      const bool is_answer_span =
          span_at[begin] >= 0 &&
          answer.answer[span_at[begin]].end == i - 1;
      if (is_answer_span) {
        alpha[i] = LogSumExp(
            alpha[i],
            alpha[begin] + scorer.Score(begin, i - 1) / options.temperature);
        continue;
      }
      // Case 2: a free segment — allowed only when it touches no covered
      // position and stays within the answer's weight threshold.
      bool free_ok = span_weight(begin, i - 1) <= answer.threshold;
      for (size_t p = begin; free_ok && p < i; ++p) {
        if (covered[p]) free_ok = false;
      }
      if (free_ok) {
        alpha[i] = LogSumExp(
            alpha[i],
            alpha[begin] + scorer.Score(begin, i - 1) / options.temperature);
      }
    }
  }
  return alpha[n];
}

StatusOr<double> AnswerPosterior(const SegmentScorer& scorer,
                                 const std::vector<size_t>& order,
                                 const std::vector<double>& weights,
                                 const TopKAnswer& answer,
                                 const PosteriorOptions& options) {
  TOPKDUP_ASSIGN_OR_RETURN(
      double log_mass,
      LogAnswerMass(scorer, order, weights, answer, options));
  const double log_z = LogPartitionFunction(scorer, options);
  if (log_mass == kNegInf) return 0.0;
  return std::exp(log_mass - log_z);
}

}  // namespace topkdup::segment
