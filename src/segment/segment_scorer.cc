#include "segment/segment_scorer.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace topkdup::segment {

SegmentScorer::SegmentScorer(const cluster::PairScores& scores,
                             const std::vector<size_t>& order, size_t band,
                             Objective objective, const Deadline* deadline)
    : n_(order.size()), band_(std::max<size_t>(band, 1)) {
  TOPKDUP_CHECK(order.size() == scores.item_count());
  trace::Span span("segment.scorer.fill");
  span.AddArg("rows", static_cast<int64_t>(n_));
  span.AddArg("band", static_cast<int64_t>(band_));
  static metrics::Counter* cells_filled =
      metrics::Registry::Global().GetCounter("segment.scorer.cells_filled");
  static metrics::Counter* rows_counter =
      metrics::Registry::Global().GetCounter("segment.scorer.rows");
  scores_flat_.assign(n_ * band_, 0.0);
  // Closed form of the per-row fills below (each row i scores spans
  // [i, i..min(n-1, i+band-1)]); kept as a member so explain reports don't
  // have to read the process-wide counter.
  for (size_t i = 0; i < n_; ++i) {
    cells_filled_ += std::min(n_ - 1, i + band_ - 1) - i + 1;
  }

  std::vector<size_t> pos(n_, 0);
  for (size_t p = 0; p < n_; ++p) pos[order[p]] = p;

  // neg_total[t]: all of t's pair mass that counts as crossing when t is
  // alone — stored negative scores plus default-score mass of unstored
  // pairs.
  std::vector<double> neg_total(n_, 0.0);
  for (size_t t = 0; t < n_; ++t) {
    neg_total[t] =
        scores.StoredNegativeIncident(t) +
        scores.default_score() *
            static_cast<double>(n_ - 1 - scores.Neighbors(t).size());
  }

  // Entry check (serial, so work-budget expiry here is deterministic): an
  // already-expired deadline skips the whole fill; all-zero scores still
  // admit every segmentation, just without quality guidance.
  if (deadline != nullptr && deadline->Expired()) {
    degraded_.store(true, std::memory_order_relaxed);
    return;
  }

  // Each span start i fills only its own row scores_flat_[i*band ..), and
  // the incremental walk reads nothing another row writes, so rows
  // parallelize with no synchronization and bit-identical results.
  ParallelFor(0, n_, DefaultGrain(n_), [&](size_t i) {
    // Urgent (wall-clock/cancel) poll per row; a skipped row keeps its
    // zero scores. Never decides work-budget expiry, so budget-limited
    // fills stay bit-identical at any thread count.
    if (deadline != nullptr && deadline->ExpiredUrgent()) {
      degraded_.store(true, std::memory_order_relaxed);
      return;
    }
    // Crossing (separation-reward) part, shared by both objectives.
    // Span [i, i]: only item order[i]; the value is minus its crossing
    // mass.
    double crossing_value = -neg_total[order[i]];
    // Inside part under kMinPair: weakest stored pair / default presence.
    double min_stored = std::numeric_limits<double>::infinity();
    bool has_unstored_inside = false;
    size_t pairs_inside = 0;
    // Inside part under kSumPositive is accumulated straight into
    // crossing_value (it shares the incremental walk).
    scores_flat_[i * band_] = crossing_value;  // Singleton: inside = 0.
    const size_t j_end = std::min(n_ - 1, i + band_ - 1);
    for (size_t j = i + 1; j <= j_end; ++j) {
      const size_t t = order[j];
      // t joins the span: its own crossing mass appears...
      double delta = -neg_total[t];
      double sum_positive_delta = 0.0;
      size_t stored_inside = 0;
      for (const auto& [u, p] : scores.Neighbors(t)) {
        const size_t pu = pos[u];
        if (pu >= i && pu < j) {
          ++stored_inside;
          min_stored = std::min(min_stored, p);
          if (p > 0.0) {
            sum_positive_delta += p;  // ...new inside positive pair...
          } else if (p < 0.0) {
            // ...and negative pairs now inside forfeit the separation
            // reward they were earning from both endpoints.
            delta += 2.0 * p;
          }
        }
      }
      // Unstored pairs between t and the span likewise forfeit twice the
      // (non-positive) default separation reward.
      const size_t new_unstored = (j - i) - stored_inside;
      if (new_unstored > 0) has_unstored_inside = true;
      pairs_inside += j - i;
      delta +=
          2.0 * scores.default_score() * static_cast<double>(new_unstored);
      crossing_value += delta;

      double inside = 0.0;
      switch (objective) {
        case Objective::kSumPositive:
          // Accumulate permanently: fold into crossing_value.
          crossing_value += sum_positive_delta;
          break;
        case Objective::kMinPair:
          if (pairs_inside > 0) {
            inside = min_stored;
            if (has_unstored_inside) {
              inside = std::min(inside, scores.default_score());
            }
            if (min_stored ==
                std::numeric_limits<double>::infinity()) {
              inside = scores.default_score();  // All pairs unstored.
            }
          }
          break;
      }
      scores_flat_[i * band_ + (j - i)] = crossing_value + inside;
    }
    // One batched add per row: the DP-table fill count behind §5.3's
    // O(n * band) claim.
    rows_counter->Increment();
    cells_filled->Add(j_end - i + 1);
  });
  // Charged after the fill at a serial point: the amount is the closed-form
  // cells_filled_, identical at any thread count.
  if (deadline != nullptr) deadline->ChargeWork(cells_filled_);
}

}  // namespace topkdup::segment
