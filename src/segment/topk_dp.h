#ifndef TOPKDUP_SEGMENT_TOPK_DP_H_
#define TOPKDUP_SEGMENT_TOPK_DP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "cluster/pair_scores.h"
#include "common/deadline.h"
#include "common/status.h"
#include "segment/segment_scorer.h"

namespace topkdup::segment {

/// A span of consecutive positions [begin, end], inclusive, in a linear
/// embedding.
struct Span {
  size_t begin = 0;
  size_t end = 0;

  bool operator==(const Span&) const = default;
};

/// One of the R highest-scoring TopK answers (paper §5.3.2): a full
/// segmentation of the embedding plus the K segments designated as the
/// answer groups.
struct TopKAnswer {
  /// Total decomposable score of the segmentation (sum of S over all its
  /// segments).
  double score = 0.0;
  /// The K answer segments, sorted by decreasing total weight.
  std::vector<Span> answer;
  /// The full segmentation, left to right.
  std::vector<Span> segmentation;
  /// The weight threshold under which this answer was found: every
  /// non-answer segment weighs <= threshold < every answer segment.
  double threshold = 0.0;
};

struct TopKDpOptions {
  int k = 1;
  int r = 1;
  /// Maximum segment length in positions (the paper's practical cap on
  /// clusters with too many dissimilar points).
  size_t band = 32;
  /// Cap on the candidate threshold set. When the number of distinct
  /// achievable segment weights exceeds this, the set is subsampled
  /// (quantiles plus the heaviest values); the DP is then exact per
  /// candidate threshold but may miss an optimum whose critical threshold
  /// was dropped. 0 = no cap.
  size_t max_thresholds = 64;
  /// When non-null, polled per candidate threshold and per DP row (the DP
  /// is serial, so both checks are deterministic under a work budget). On
  /// expiry the answers already completed are returned; a threshold whose
  /// DP was interrupted mid-table contributes nothing. Callers detect the
  /// truncation via deadline->expired(). DP cell visits are charged as
  /// work units row by row.
  const Deadline* deadline = nullptr;
};

/// Finds the R highest-scoring TopK answers over all segmentations of the
/// given linear order, where the K answer segments must each weigh
/// strictly more than every non-answer segment. Implements the AnsR
/// recurrence of §5.3.2, parameterized by a weight threshold rather than a
/// positional length because collapsed positions carry weights.
///
/// `weights[item]` is each item's weight (e.g. collapsed-group weight);
/// pass all-ones for plain mention counts. Returns up to R answers sorted
/// by decreasing score; fewer when the order admits fewer than R distinct
/// qualifying segmentations. Errors when k < 1, r < 1, or the order cannot
/// produce K segments.
StatusOr<std::vector<TopKAnswer>> TopKSegmentation(
    const SegmentScorer& scorer, const std::vector<size_t>& order,
    const std::vector<double>& weights, const TopKDpOptions& options);

/// The R highest-scoring *unconstrained* segmentations (no TopK answer
/// designation) — the partition-quality workhorse used by the fig7
/// accuracy comparison. Returns up to `r` segmentations sorted by
/// decreasing score.
struct Segmentation {
  double score = 0.0;
  std::vector<Span> spans;
};
std::vector<Segmentation> BestSegmentations(const SegmentScorer& scorer,
                                            int r);

/// Converts spans over `order` into item-label form (items of span s get
/// label s).
cluster::Labels SpansToLabels(const std::vector<Span>& spans,
                              const std::vector<size_t>& order);

}  // namespace topkdup::segment

#endif  // TOPKDUP_SEGMENT_TOPK_DP_H_
