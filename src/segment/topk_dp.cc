#include "segment/topk_dp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_set>

#include "common/check.h"
#include "common/strings.h"

namespace topkdup::segment {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// One ranked entry of a DP cell.
struct Entry {
  double score = kNegInf;
  uint32_t prev_i = 0;    // Cell position the last segment started from.
  uint8_t prev_rank = 0;  // Entry rank within the predecessor cell.
  bool answer = false;    // Last segment designated an answer segment.
};

/// Keeps the top-r entries of a cell, highest score first.
void PushEntry(std::vector<Entry>* cell, const Entry& e, int r) {
  if (e.score == kNegInf) return;
  auto it = std::upper_bound(
      cell->begin(), cell->end(), e,
      [](const Entry& a, const Entry& b) { return a.score > b.score; });
  cell->insert(it, e);
  if (cell->size() > static_cast<size_t>(r)) cell->pop_back();
}

std::vector<double> CollectThresholds(const std::vector<double>& prefix,
                                      size_t n, size_t band,
                                      size_t max_thresholds) {
  std::vector<double> values;
  values.push_back(0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < std::min(n, i + band); ++j) {
      values.push_back(prefix[j + 1] - prefix[i]);
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (max_thresholds == 0 || values.size() <= max_thresholds) return values;

  // Subsample: keep quantiles plus the heaviest values (answer segments
  // are heavy, so the critical threshold is usually near the top).
  std::vector<double> kept;
  const size_t head = max_thresholds / 4;
  const size_t quantiles = max_thresholds - head;
  for (size_t q = 0; q < quantiles; ++q) {
    kept.push_back(values[q * (values.size() - 1) / (quantiles - 1)]);
  }
  for (size_t h = 0; h < head; ++h) {
    kept.push_back(values[values.size() - 1 - h]);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  return kept;
}

}  // namespace

cluster::Labels SpansToLabels(const std::vector<Span>& spans,
                              const std::vector<size_t>& order) {
  cluster::Labels labels(order.size(), -1);
  for (size_t s = 0; s < spans.size(); ++s) {
    for (size_t p = spans[s].begin; p <= spans[s].end; ++p) {
      labels[order[p]] = static_cast<int>(s);
    }
  }
  for (int l : labels) TOPKDUP_CHECK(l >= 0);
  return labels;
}

std::vector<Segmentation> BestSegmentations(const SegmentScorer& scorer,
                                            int r) {
  TOPKDUP_CHECK(r >= 1);
  const size_t n = scorer.size();
  const size_t band = scorer.band();
  std::vector<Segmentation> out;
  if (n == 0) {
    out.push_back({0.0, {}});
    return out;
  }

  // cells[i]: top-r scores of segmenting the first i positions.
  std::vector<std::vector<Entry>> cells(n + 1);
  cells[0].push_back(Entry{0.0, 0, 0, false});
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= std::min(band, i); ++j) {
      const double seg = scorer.Score(i - j, i - 1);
      const auto& prev = cells[i - j];
      for (size_t rank = 0; rank < prev.size(); ++rank) {
        Entry e;
        e.score = prev[rank].score + seg;
        e.prev_i = static_cast<uint32_t>(i - j);
        e.prev_rank = static_cast<uint8_t>(rank);
        PushEntry(&cells[i], e, r);
      }
    }
  }

  for (size_t rank = 0; rank < cells[n].size(); ++rank) {
    Segmentation seg;
    seg.score = cells[n][rank].score;
    size_t i = n;
    size_t rk = rank;
    while (i > 0) {
      const Entry& e = cells[i][rk];
      seg.spans.push_back(Span{e.prev_i, i - 1});
      rk = e.prev_rank;
      i = e.prev_i;
    }
    std::reverse(seg.spans.begin(), seg.spans.end());
    out.push_back(std::move(seg));
  }
  return out;
}

StatusOr<std::vector<TopKAnswer>> TopKSegmentation(
    const SegmentScorer& scorer, const std::vector<size_t>& order,
    const std::vector<double>& weights, const TopKDpOptions& options) {
  const size_t n = scorer.size();
  const size_t band = scorer.band();
  const int k = options.k;
  const int r = options.r;
  if (k < 1) return Status::InvalidArgument("TopKSegmentation: k must be >= 1");
  if (r < 1) return Status::InvalidArgument("TopKSegmentation: r must be >= 1");
  if (order.size() != n || weights.size() < n) {
    return Status::InvalidArgument(
        "TopKSegmentation: order/weights sizes do not match the scorer");
  }
  if (n < static_cast<size_t>(k)) {
    return Status::FailedPrecondition(StrFormat(
        "TopKSegmentation: %zu positions cannot form %d answer groups", n,
        k));
  }

  // Prefix weights over positions.
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t p = 0; p < n; ++p) {
    prefix[p + 1] = prefix[p] + weights[order[p]];
  }
  auto span_weight = [&](size_t begin, size_t end) {
    return prefix[end + 1] - prefix[begin];
  };

  const std::vector<double> thresholds =
      CollectThresholds(prefix, n, band, options.max_thresholds);

  // Collect candidate answers across thresholds, deduping identical
  // (segmentation, answer-designation) pairs that multiple thresholds
  // produce.
  std::vector<TopKAnswer> results;
  std::unordered_set<std::string> seen;

  const Deadline* deadline = options.deadline;
  for (double threshold : thresholds) {
    // Per-threshold boundary: answers from fully processed thresholds are
    // final, so stopping here returns a sound (merely less explored)
    // top-R set.
    if (deadline != nullptr && deadline->Expired()) break;
    // cells[kk][i]: top-r over segmentations of the first i positions with
    // exactly kk answer segments, all non-answer segments weighing
    // <= threshold and all answer segments > threshold.
    std::vector<std::vector<std::vector<Entry>>> cells(
        static_cast<size_t>(k) + 1,
        std::vector<std::vector<Entry>>(n + 1));
    cells[0][0].push_back(Entry{0.0, 0, 0, false});

    bool interrupted = false;
    for (size_t i = 1; i <= n; ++i) {
      // Per-row poll (serial DP, deterministic under a work budget). An
      // interrupted table is discarded whole — a partially filled final
      // cell could surface a worse-than-reported answer.
      if (deadline != nullptr) {
        deadline->ChargeWork(std::min(band, i));
        if ((i & 0x3f) == 0 && deadline->Expired()) {
          interrupted = true;
          break;
        }
      }
      for (size_t j = 1; j <= std::min(band, i); ++j) {
        const double seg_score = scorer.Score(i - j, i - 1);
        const bool is_answer = span_weight(i - j, i - 1) > threshold;
        for (int kk = 0; kk <= k; ++kk) {
          const int from_k = is_answer ? kk - 1 : kk;
          if (from_k < 0) continue;
          const auto& prev = cells[from_k][i - j];
          for (size_t rank = 0; rank < prev.size(); ++rank) {
            Entry e;
            e.score = prev[rank].score + seg_score;
            e.prev_i = static_cast<uint32_t>(i - j);
            e.prev_rank = static_cast<uint8_t>(rank);
            e.answer = is_answer;
            PushEntry(&cells[kk][i], e, r);
          }
        }
      }
    }

    if (interrupted) break;

    // Backtrack each final entry.
    const auto& final_cell = cells[k][n];
    for (size_t rank = 0; rank < final_cell.size(); ++rank) {
      TopKAnswer ans;
      ans.score = final_cell[rank].score;
      ans.threshold = threshold;
      size_t i = n;
      size_t rk = rank;
      int kk = k;
      std::string signature;
      while (i > 0) {
        const Entry& e = cells[kk][i][rk];
        const Span span{e.prev_i, i - 1};
        ans.segmentation.push_back(span);
        if (e.answer) {
          ans.answer.push_back(span);
          --kk;
        }
        signature += StrFormat("%u-%zu%c|", e.prev_i, i - 1,
                               e.answer ? 'A' : 's');
        rk = e.prev_rank;
        i = e.prev_i;
      }
      std::reverse(ans.segmentation.begin(), ans.segmentation.end());
      std::sort(ans.answer.begin(), ans.answer.end(),
                [&](const Span& a, const Span& b) {
                  return span_weight(a.begin, a.end) >
                         span_weight(b.begin, b.end);
                });
      if (seen.insert(signature).second) {
        results.push_back(std::move(ans));
      }
    }
  }

  std::sort(results.begin(), results.end(),
            [](const TopKAnswer& a, const TopKAnswer& b) {
              return a.score > b.score;
            });
  if (results.size() > static_cast<size_t>(r)) {
    results.resize(static_cast<size_t>(r));
  }
  return results;
}

}  // namespace topkdup::segment
