#ifndef TOPKDUP_SEGMENT_SEGMENT_SCORER_H_
#define TOPKDUP_SEGMENT_SEGMENT_SCORER_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "cluster/pair_scores.h"
#include "common/deadline.h"

namespace topkdup::segment {

/// Precomputed decomposable group scores S(i, j) (paper §5.3.2) of every
/// contiguous span [i, j] of an ordered item list with length <= band:
/// S = (positive pair scores inside the span) - (negative pair scores
/// crossing out of the span), exactly GroupScore of cluster/correlation.h
/// applied to the span's items.
///
/// Build cost O(n * band * avg_degree); lookups are O(1) array reads, which
/// the DP over segmentations depends on.
class SegmentScorer {
 public:
  /// How a span's inside evidence is aggregated (§5.1 discusses both).
  /// The crossing term (negative pairs leaving the span earn a separation
  /// reward) is identical under both objectives.
  enum class Objective {
    /// Sum of positive pair scores inside the span (correlation
    /// clustering, Eq. 1). The default.
    kSumPositive,
    /// The paper's alternative: "instead of summing over all positive
    /// pairs within a cluster, take the score of the least positive
    /// pair" — the weakest link. A span containing any unstored pair is
    /// capped at the default score; a singleton span contributes 0.
    kMinPair,
  };

  /// `order` is a permutation of 0..scores.item_count()-1. Spans longer
  /// than `band` positions are not scored (the DP never asks for them;
  /// this is the paper's "do not consider clusters with too many
  /// dissimilar points" speedup).
  /// When `deadline` is non-null it is checked once at entry (full check)
  /// and urgent-polled per row during the fill; skipped rows keep score 0,
  /// which only worsens DP segment quality, never validity. DP cell fills
  /// are charged as work units after the (deterministically sized) fill.
  SegmentScorer(const cluster::PairScores& scores,
                const std::vector<size_t>& order, size_t band,
                Objective objective = Objective::kSumPositive,
                const Deadline* deadline = nullptr);

  /// Score of span [i, j], 0-based inclusive positions, j - i < band.
  double Score(size_t i, size_t j) const {
    return scores_flat_[i * band_ + (j - i)];
  }

  size_t size() const { return n_; }
  size_t band() const { return band_; }
  /// Number of table cells actually scored (rows are band-clipped at the
  /// right edge, so this is < n * band). Matches the per-build increment
  /// of the segment.scorer.cells_filled counter; used by explain reports.
  size_t cells_filled() const { return cells_filled_; }
  /// True when the deadline skipped some (or all) rows of the fill.
  bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }

 private:
  size_t n_;
  size_t band_;
  size_t cells_filled_ = 0;
  std::atomic<bool> degraded_{false};
  std::vector<double> scores_flat_;  // [i * band + (j - i)]
};

}  // namespace topkdup::segment

#endif  // TOPKDUP_SEGMENT_SEGMENT_SCORER_H_
