#ifndef TOPKDUP_SEGMENT_SEGMENT_SCORER_H_
#define TOPKDUP_SEGMENT_SEGMENT_SCORER_H_

#include <cstddef>
#include <vector>

#include "cluster/pair_scores.h"

namespace topkdup::segment {

/// Precomputed decomposable group scores S(i, j) (paper §5.3.2) of every
/// contiguous span [i, j] of an ordered item list with length <= band:
/// S = (positive pair scores inside the span) - (negative pair scores
/// crossing out of the span), exactly GroupScore of cluster/correlation.h
/// applied to the span's items.
///
/// Build cost O(n * band * avg_degree); lookups are O(1) array reads, which
/// the DP over segmentations depends on.
class SegmentScorer {
 public:
  /// How a span's inside evidence is aggregated (§5.1 discusses both).
  /// The crossing term (negative pairs leaving the span earn a separation
  /// reward) is identical under both objectives.
  enum class Objective {
    /// Sum of positive pair scores inside the span (correlation
    /// clustering, Eq. 1). The default.
    kSumPositive,
    /// The paper's alternative: "instead of summing over all positive
    /// pairs within a cluster, take the score of the least positive
    /// pair" — the weakest link. A span containing any unstored pair is
    /// capped at the default score; a singleton span contributes 0.
    kMinPair,
  };

  /// `order` is a permutation of 0..scores.item_count()-1. Spans longer
  /// than `band` positions are not scored (the DP never asks for them;
  /// this is the paper's "do not consider clusters with too many
  /// dissimilar points" speedup).
  SegmentScorer(const cluster::PairScores& scores,
                const std::vector<size_t>& order, size_t band,
                Objective objective = Objective::kSumPositive);

  /// Score of span [i, j], 0-based inclusive positions, j - i < band.
  double Score(size_t i, size_t j) const {
    return scores_flat_[i * band_ + (j - i)];
  }

  size_t size() const { return n_; }
  size_t band() const { return band_; }
  /// Number of table cells actually scored (rows are band-clipped at the
  /// right edge, so this is < n * band). Matches the per-build increment
  /// of the segment.scorer.cells_filled counter; used by explain reports.
  size_t cells_filled() const { return cells_filled_; }

 private:
  size_t n_;
  size_t band_;
  size_t cells_filled_ = 0;
  std::vector<double> scores_flat_;  // [i * band + (j - i)]
};

}  // namespace topkdup::segment

#endif  // TOPKDUP_SEGMENT_SEGMENT_SCORER_H_
