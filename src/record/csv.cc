#include "record/csv.h"

#include <cstdlib>
#include <iterator>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace topkdup::record {

StatusOr<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      if (!cur.empty()) {
        return Status::InvalidArgument(
            StrFormat("quote inside unquoted field at column %zu", i));
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    const bool needs_quotes =
        f.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
      out.append(f);
      continue;
    }
    out.push_back('"');
    for (char c : f) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

namespace {

/// Character-level CSV parser handling quoted fields that span lines.
/// Returns one row per record; a trailing newline does not create an
/// empty row.
StatusOr<std::vector<std::vector<std::string>>> ParseCsvContent(
    const std::string& content) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cur;
  bool in_quotes = false;
  bool cur_was_quoted = false;
  bool row_has_content = false;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!cur.empty()) {
          return Status::InvalidArgument(
              StrFormat("quote inside unquoted field at offset %zu", i));
        }
        in_quotes = true;
        cur_was_quoted = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(cur));
        cur.clear();
        cur_was_quoted = false;
        row_has_content = true;
        break;
      case '\r':
        break;  // Tolerate CRLF.
      case '\n':
        if (row_has_content || !cur.empty() || cur_was_quoted) {
          row.push_back(std::move(cur));
          cur.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
          cur_was_quoted = false;
        }
        break;
      default:
        cur.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  if (row_has_content || !cur.empty()) {
    row.push_back(std::move(cur));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

StatusOr<Dataset> ReadCsv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  TOPKDUP_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                           ParseCsvContent(content));
  if (rows.empty()) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }
  const std::vector<std::string>& header = rows.front();

  int weight_col = -1;
  int entity_col = -1;
  std::vector<std::string> field_names;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "__weight__") {
      weight_col = static_cast<int>(i);
    } else if (header[i] == "__entity__") {
      entity_col = static_cast<int>(i);
    } else {
      field_names.push_back(header[i]);
    }
  }

  Dataset data{Schema(std::move(field_names))};
  for (size_t row_no = 1; row_no < rows.size(); ++row_no) {
    std::vector<std::string>& cols = rows[row_no];
    if (cols.size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("%s: row %zu: expected %zu columns, got %zu",
                    path.c_str(), row_no, header.size(), cols.size()));
    }
    Record rec;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (static_cast<int>(i) == weight_col) {
        rec.weight = std::strtod(cols[i].c_str(), nullptr);
      } else if (static_cast<int>(i) == entity_col) {
        rec.entity_id = std::strtoll(cols[i].c_str(), nullptr, 10);
      } else {
        rec.fields.push_back(std::move(cols[i]));
      }
    }
    data.Add(std::move(rec));
  }
  TOPKDUP_RETURN_IF_ERROR(data.Validate());
  return data;
}

Status WriteCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for write: " + path);
  }
  std::vector<std::string> header = data.schema().field_names();
  header.push_back("__weight__");
  header.push_back("__entity__");
  out << FormatCsvLine(header) << "\n";
  for (const Record& r : data.records()) {
    std::vector<std::string> cols = r.fields;
    std::ostringstream w;
    w << r.weight;
    cols.push_back(w.str());
    cols.push_back(std::to_string(r.entity_id));
    out << FormatCsvLine(cols) << "\n";
  }
  if (!out.good()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace topkdup::record
