#include "record/csv.h"

#include <cstdlib>
#include <iterator>
#include <fstream>
#include <sstream>

#include "common/faultpoint.h"
#include "common/strings.h"

namespace topkdup::record {

StatusOr<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      if (!cur.empty()) {
        return Status::InvalidArgument(
            StrFormat("quote inside unquoted field at column %zu", i));
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    const bool needs_quotes =
        f.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
      out.append(f);
      continue;
    }
    out.push_back('"');
    for (char c : f) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

namespace {

/// One parsed row plus the 1-based line it started on, for error context.
struct CsvRow {
  size_t line = 1;
  std::vector<std::string> cols;
};

/// Character-level CSV parser handling quoted fields that span lines.
/// Returns one row per record; a trailing newline does not create an
/// empty row. Every error names the 1-based line and column (byte offset
/// within the line) where it was detected.
StatusOr<std::vector<CsvRow>> ParseCsvContent(const std::string& content,
                                              const std::string& name,
                                              const CsvLimits& limits) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string cur;
  bool in_quotes = false;
  bool cur_was_quoted = false;
  bool row_has_content = false;
  size_t line = 1;
  size_t col = 1;
  size_t quote_line = 0;  // Where the open quoted field started.
  size_t quote_col = 0;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\0') {
      return Status::InvalidArgument(
          StrFormat("%s: line %zu column %zu: embedded NUL byte",
                    name.c_str(), line, col));
    }
    if (cur.size() >= limits.max_field_bytes) {
      return Status::ResourceExhausted(StrFormat(
          "%s: line %zu column %zu: field exceeds %zu bytes", name.c_str(),
          line, col, limits.max_field_bytes));
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          cur.push_back('"');
          ++i;
          col += 2;
        } else {
          in_quotes = false;
          ++col;
        }
      } else {
        cur.push_back(c);
        if (c == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!cur.empty()) {
          return Status::InvalidArgument(
              StrFormat("%s: line %zu column %zu: quote inside unquoted "
                        "field",
                        name.c_str(), line, col));
        }
        if (!row_has_content) row.line = line;
        in_quotes = true;
        cur_was_quoted = true;
        row_has_content = true;
        quote_line = line;
        quote_col = col;
        ++col;
        break;
      case ',':
        if (!row_has_content) row.line = line;
        row.cols.push_back(std::move(cur));
        cur.clear();
        cur_was_quoted = false;
        row_has_content = true;
        ++col;
        break;
      case '\r':
        ++col;  // Tolerate CRLF.
        break;
      case '\n':
        if (row_has_content || !cur.empty() || cur_was_quoted) {
          row.cols.push_back(std::move(cur));
          cur.clear();
          rows.push_back(std::move(row));
          row = CsvRow{};
          row_has_content = false;
          cur_was_quoted = false;
        }
        ++line;
        col = 1;
        break;
      default:
        if (!row_has_content) row.line = line;
        cur.push_back(c);
        row_has_content = true;
        ++col;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        StrFormat("%s: line %zu column %zu: unterminated quoted field",
                  name.c_str(), quote_line, quote_col));
  }
  if (row_has_content || !cur.empty()) {
    row.cols.push_back(std::move(cur));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

StatusOr<Dataset> ReadCsvFromString(const std::string& content,
                                    const std::string& name,
                                    const CsvLimits& limits) {
  TOPKDUP_FAULT_RETURN_IF("csv.read");
  TOPKDUP_ASSIGN_OR_RETURN(std::vector<CsvRow> rows,
                           ParseCsvContent(content, name, limits));
  if (rows.empty()) {
    return Status::InvalidArgument("empty CSV input: " + name);
  }
  const std::vector<std::string>& header = rows.front().cols;

  int weight_col = -1;
  int entity_col = -1;
  std::vector<std::string> field_names;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "__weight__") {
      weight_col = static_cast<int>(i);
    } else if (header[i] == "__entity__") {
      entity_col = static_cast<int>(i);
    } else {
      field_names.push_back(header[i]);
    }
  }

  Dataset data{Schema(std::move(field_names))};
  for (size_t row_no = 1; row_no < rows.size(); ++row_no) {
    std::vector<std::string>& cols = rows[row_no].cols;
    const size_t row_line = rows[row_no].line;
    if (cols.size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("%s: line %zu: expected %zu columns, got %zu",
                    name.c_str(), row_line, header.size(), cols.size()));
    }
    Record rec;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (static_cast<int>(i) == weight_col) {
        char* end = nullptr;
        rec.weight = std::strtod(cols[i].c_str(), &end);
        if (end == cols[i].c_str() || *end != '\0') {
          return Status::InvalidArgument(StrFormat(
              "%s: line %zu: __weight__ value \"%s\" is not a number",
              name.c_str(), row_line, cols[i].c_str()));
        }
      } else if (static_cast<int>(i) == entity_col) {
        char* end = nullptr;
        rec.entity_id = std::strtoll(cols[i].c_str(), &end, 10);
        if (end == cols[i].c_str() || *end != '\0') {
          return Status::InvalidArgument(StrFormat(
              "%s: line %zu: __entity__ value \"%s\" is not an integer",
              name.c_str(), row_line, cols[i].c_str()));
        }
      } else {
        rec.fields.push_back(std::move(cols[i]));
      }
    }
    data.Add(std::move(rec));
  }
  TOPKDUP_RETURN_IF_ERROR(data.Validate());
  return data;
}

StatusOr<Dataset> ReadCsv(const std::string& path, const CsvLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return ReadCsvFromString(content, path, limits);
}

Status WriteCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for write: " + path);
  }
  std::vector<std::string> header = data.schema().field_names();
  header.push_back("__weight__");
  header.push_back("__entity__");
  out << FormatCsvLine(header) << "\n";
  for (const Record& r : data.records()) {
    std::vector<std::string> cols = r.fields;
    std::ostringstream w;
    w << r.weight;
    cols.push_back(w.str());
    cols.push_back(std::to_string(r.entity_id));
    out << FormatCsvLine(cols) << "\n";
  }
  if (!out.good()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace topkdup::record
