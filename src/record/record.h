#ifndef TOPKDUP_RECORD_RECORD_H_
#define TOPKDUP_RECORD_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace topkdup::record {

/// Ordered list of named string fields shared by all records of a Dataset.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> field_names);

  /// Index of `name`, or -1 when the schema has no such field.
  int FieldIndex(std::string_view name) const;

  size_t field_count() const { return field_names_.size(); }
  const std::vector<std::string>& field_names() const { return field_names_; }

 private:
  std::vector<std::string> field_names_;
};

/// One mention/tuple. Fields are raw strings positionally aligned with the
/// dataset Schema.
///
/// `weight` is the record's multiplicity or score contribution: the count
/// field of a pre-collapsed citation, the paper score of a student exam, or
/// the asset worth of an address mention. Group size/score aggregates sum
/// weights, so an unweighted dataset uses weight = 1.
///
/// `entity_id` is the ground-truth entity label when known (synthetic data
/// and labeled benchmarks); -1 means unlabeled. The query algorithms never
/// read it — it exists for evaluation only.
struct Record {
  std::vector<std::string> fields;
  double weight = 1.0;
  int64_t entity_id = -1;

  const std::string& field(size_t i) const { return fields[i]; }
};

/// A schema plus its records. Record ids are positions in `records`.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Record>& records() const { return records_; }
  std::vector<Record>* mutable_records() { return &records_; }

  size_t size() const { return records_.size(); }
  const Record& operator[](size_t i) const { return records_[i]; }

  void Add(Record r) { records_.push_back(std::move(r)); }

  /// Validates that every record has exactly schema().field_count() fields.
  Status Validate() const;

  /// Returns a new dataset with the records whose index is in `keep`,
  /// in the given order.
  Dataset Subset(const std::vector<size_t>& keep) const;

 private:
  Schema schema_;
  std::vector<Record> records_;
};

}  // namespace topkdup::record

#endif  // TOPKDUP_RECORD_RECORD_H_
