#include "record/record.h"

#include "common/strings.h"

namespace topkdup::record {

Schema::Schema(std::vector<std::string> field_names)
    : field_names_(std::move(field_names)) {}

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < field_names_.size(); ++i) {
    if (field_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status Dataset::Validate() const {
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].fields.size() != schema_.field_count()) {
      return Status::InvalidArgument(StrFormat(
          "record %zu has %zu fields, schema has %zu", i,
          records_[i].fields.size(), schema_.field_count()));
    }
  }
  return Status::OK();
}

Dataset Dataset::Subset(const std::vector<size_t>& keep) const {
  Dataset out(schema_);
  out.records_.reserve(keep.size());
  for (size_t idx : keep) out.records_.push_back(records_[idx]);
  return out;
}

}  // namespace topkdup::record
