#ifndef TOPKDUP_RECORD_CSV_H_
#define TOPKDUP_RECORD_CSV_H_

#include <string>

#include "common/status.h"
#include "record/record.h"

namespace topkdup::record {

/// Reads a CSV file with a header row into a Dataset. Handles RFC-4180 style
/// quoting ("" escapes a quote inside a quoted field). Two optional special
/// columns are recognized and stripped from the schema when present:
///   __weight__  — parsed into Record::weight
///   __entity__  — parsed into Record::entity_id
StatusOr<Dataset> ReadCsv(const std::string& path);

/// Writes `data` as CSV with a header row, emitting __weight__ and
/// __entity__ columns so that a round trip preserves the dataset.
Status WriteCsv(const Dataset& data, const std::string& path);

/// Parses one CSV line (no trailing newline) into fields.
StatusOr<std::vector<std::string>> ParseCsvLine(const std::string& line);

/// Escapes and joins fields into one CSV line (no trailing newline).
std::string FormatCsvLine(const std::vector<std::string>& fields);

}  // namespace topkdup::record

#endif  // TOPKDUP_RECORD_CSV_H_
