#ifndef TOPKDUP_RECORD_CSV_H_
#define TOPKDUP_RECORD_CSV_H_

#include <string>

#include "common/status.h"
#include "record/record.h"

namespace topkdup::record {

/// Resource caps applied while parsing untrusted CSV input. Exceeding a
/// cap returns ResourceExhausted with the line/column where it happened.
struct CsvLimits {
  /// Hard cap on one field's decoded size. A malformed file — an
  /// unterminated quote swallowing everything to EOF, a generated line
  /// with no separators — hits this long before exhausting memory.
  size_t max_field_bytes = size_t{1} << 30;  // 1 GiB
};

/// Reads a CSV file with a header row into a Dataset. Handles RFC-4180 style
/// quoting ("" escapes a quote inside a quoted field). Two optional special
/// columns are recognized and stripped from the schema when present:
///   __weight__  — parsed into Record::weight
///   __entity__  — parsed into Record::entity_id
///
/// Malformed input (unterminated quote, embedded NUL, ragged rows,
/// unparsable weight/entity values) returns InvalidArgument naming the
/// line and column; oversized fields return ResourceExhausted. Parsing
/// never aborts the process.
StatusOr<Dataset> ReadCsv(const std::string& path,
                          const CsvLimits& limits = {});

/// Same parse over an in-memory buffer; `name` labels error messages the
/// way the path does for ReadCsv.
StatusOr<Dataset> ReadCsvFromString(const std::string& content,
                                    const std::string& name = "<string>",
                                    const CsvLimits& limits = {});

/// Writes `data` as CSV with a header row, emitting __weight__ and
/// __entity__ columns so that a round trip preserves the dataset.
Status WriteCsv(const Dataset& data, const std::string& path);

/// Parses one CSV line (no trailing newline) into fields.
StatusOr<std::vector<std::string>> ParseCsvLine(const std::string& line);

/// Escapes and joins fields into one CSV line (no trailing newline).
std::string FormatCsvLine(const std::vector<std::string>& fields);

}  // namespace topkdup::record

#endif  // TOPKDUP_RECORD_CSV_H_
