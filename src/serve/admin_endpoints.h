#ifndef TOPKDUP_SERVE_ADMIN_ENDPOINTS_H_
#define TOPKDUP_SERVE_ADMIN_ENDPOINTS_H_

#include "obs/admin_server.h"
#include "serve/service.h"

namespace topkdup::serve {

/// Registers the standard introspection endpoints for `service` on
/// `server` (call before server.Start(); `service` must outlive it):
///
///   /metrics        Prometheus text: the full global registry through
///                   metrics::PrometheusText with the default label rules
///                   (per-dataset breaker state, per-reason sheds, and
///                   per-endpoint admin counters render as labeled series).
///   /healthz        Liveness: 200 "ok" while the process serves at all.
///   /readyz         Readiness from QueryService::Health().ready — 200
///                   "ready" or 503 "unready" (breakers all open, or no
///                   workers).
///   /statusz        One JSON object: build info, uptime, queue depth,
///                   inflight, admission totals, index-cache hit rate,
///                   warmed-index bytes, breaker state and measured cost
///                   model per dataset, request-log counters, trace-ring
///                   occupancy, process self-stats (RSS, open fds), and
///                   the top CPU consumers (datasets/stages) over the
///                   attribution window.
///   /tracez         Chrome-trace JSON snapshot of the always-on span
///                   ring (load in chrome://tracing or Perfetto).
///   /debug/queries  RequestLog::DebugQueriesJson() — captured slow
///                   queries with their explain reports, plus the recent
///                   emitted request-log lines.
///   /debug/profile  On-demand sampling CPU profile: arms the SIGPROF
///                   profiler for `?seconds=N` (default 1, clamped to
///                   [0.05, 30]) and answers with collapsed-stack text
///                   for flamegraph.pl. 409 when a session is already
///                   armed. The admin plane serves one connection at a
///                   time, so other admin requests queue in the backlog
///                   for the window — query serving is unaffected (the
///                   profiler only samples, never blocks workers).
void RegisterAdminEndpoints(obs::AdminServer& server,
                            const QueryService& service);

}  // namespace topkdup::serve

#endif  // TOPKDUP_SERVE_ADMIN_ENDPOINTS_H_
