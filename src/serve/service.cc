#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/faultpoint.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/resource_meter.h"
#include "common/strings.h"
#include "common/trace.h"
#include "predicates/blocked_index.h"
#include "predicates/index_cache.h"

namespace topkdup::serve {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int64_t MillisUntil(Clock::time_point when) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(when -
                                                               Clock::now())
      .count();
}

bool ValidDatasetName(std::string_view name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Stable tag naming a predicate's persisted index file: FNV-1a of the
/// predicate name, in hex, so distinct predicates of one dataset never
/// collide and the name survives process restarts.
std::string PredFileTag(const predicates::PairPredicate& pred) {
  uint64_t hash = 1469598103934665603ull;
  for (char c : pred.name()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

/// A persisted image is reusable only when it covers the identity item set
/// 0..n-1 (the full corpus, i.e. MakeSingletonGroups representatives);
/// anything else falls back to a fresh build.
bool CoversIdentityItems(const predicates::BlockedIndex& index, size_t n) {
  if (index.item_count() != n) return false;
  for (size_t i = 0; i < n; ++i) {
    if (index.record_id(i) != i) return false;
  }
  return true;
}

metrics::Counter* RecoveredMentionsCounter() {
  return metrics::Registry::Global().GetCounter(
      "serve.wal.recovered_mentions");
}

metrics::Counter* CheckpointsCounter() {
  return metrics::Registry::Global().GetCounter("serve.wal.checkpoints");
}

}  // namespace

const char* ServedOutcomeName(ServedOutcome outcome) {
  switch (outcome) {
    case ServedOutcome::kExact:
      return "exact";
    case ServedOutcome::kDegraded:
      return "degraded";
    case ServedOutcome::kBreakerDegraded:
      return "breaker_degraded";
    case ServedOutcome::kShed:
      return "shed";
    case ServedOutcome::kError:
      return "error";
  }
  return "unknown";
}

/// Everything the service tracks per registered dataset. Heap-allocated
/// and never removed, so raw pointers into the map stay valid for the
/// service lifetime.
struct QueryService::DatasetState {
  DatasetState(std::string name_in, const BreakerOptions& breaker_options,
               size_t cache_capacity)
      : name(std::move(name_in)),
        breaker(breaker_options),
        answer_cache(cache_capacity) {}

  std::string name;
  bool online = false;
  DatasetBundle bundle;                      // Static datasets.
  std::unique_ptr<topk::OnlineTopK> stream;  // Online datasets.
  /// Writer side: AddMention / TakeSnapshot (both mutate the stream).
  /// Reader side: total_weight() peeks. Queries hold it only for the
  /// snapshot, never for execution.
  mutable std::shared_mutex stream_mu;

  /// Durability state (online datasets with ServiceOptions::wal_dir).
  /// All three are guarded by the stream writer lock, like the stream
  /// itself — WAL append and in-memory apply are one critical section.
  std::unique_ptr<WriteAheadLog> wal;
  /// Newest persisted checkpoint generation (0 = none yet).
  uint64_t ckpt_seq = 0;
  /// WAL bytes accumulated since that checkpoint; crossing
  /// ServiceOptions::checkpoint_bytes triggers the next one.
  uint64_t wal_bytes_since_ckpt = 0;

  /// Per-dataset blocking-index cache: every stage of every query on this
  /// dataset resolves its index here, so each (predicate, item-set) pair
  /// is built once — at registration for the full-corpus indexes — and
  /// reused, memoized, across requests and retries.
  predicates::IndexCache index_cache;

  CircuitBreaker breaker;
  metrics::Gauge* breaker_gauge = nullptr;

  // Rolling execution-cost samples (seconds): the predicted-miss shed's
  // fallback while the cost model below is empty, and the p50 health
  // figure.
  mutable std::mutex stats_mu;
  std::vector<double> samples;
  size_t next_sample = 0;

  /// Measured per-unit execution costs (EWMA over attributed CPU, wall,
  /// and work counts of completed attempts) — the predicted-miss shed's
  /// primary estimate.
  CostModel cost_model;

  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> shed{0};

  /// Exact answers cached by query shape and stamped with their epoch.
  /// Serves current-epoch hits verbatim, stale hits as widened bounds,
  /// and (via MostRecent) the breaker's bounds-only fallback — the
  /// widening basis is the *published* weight delta since the entry's
  /// epoch, which survives recovery because epochs ride the WAL.
  AnswerCache answer_cache;

  /// Epoch publication batching state (epoch_batch_ms > 0). Guarded by
  /// the stream writer lock like the stream itself.
  Clock::time_point last_publish{};
  bool ever_published = false;
  bool pending_publish = false;

  static constexpr size_t kMaxSamples = 64;

  void RecordSample(double seconds) {
    std::lock_guard<std::mutex> lock(stats_mu);
    if (samples.size() < kMaxSamples) {
      samples.push_back(seconds);
    } else {
      samples[next_sample] = seconds;
      next_sample = (next_sample + 1) % kMaxSamples;
    }
  }

  double P50Seconds() const {
    std::lock_guard<std::mutex> lock(stats_mu);
    if (samples.empty()) return 0.0;
    std::vector<double> sorted = samples;
    const size_t mid = sorted.size() / 2;
    std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
    return sorted[mid];
  }
};

struct QueryService::Pending {
  QueryRequest request;
  uint64_t id = 0;
  DatasetState* ds = nullptr;
  int64_t budget_ms = 0;
  CircuitBreaker::Decision decision = CircuitBreaker::Decision::kProceed;
  Clock::time_point admitted_at{};
  double queue_seconds = 0.0;
  /// Wall seconds of each execution attempt, in submission order; feeds
  /// the wide-event request-log line.
  std::vector<double> attempt_seconds;
  /// Per-query resource attribution: attached to the executing thread
  /// for each attempt, delegated into pool workers by parallel-region
  /// launch, read out once in FinishResponse.
  resource::ResourceMeter meter;
  /// For predicted-miss sheds: what the model predicted and the unit
  /// cost it used, surfaced on the request-log line.
  double shed_predicted_ms = 0.0;
  double shed_cpu_per_pair_ns = 0.0;
  /// Answer-cache disposition decided at admission ("miss" when the
  /// request proceeds to execution); stamped onto the response.
  std::string cache_disposition;
  std::promise<QueryResponse> promise;
};

QueryService::QueryService(ServiceOptions options)
    : options_(std::move(options)) {
  auto& registry = metrics::Registry::Global();
  admitted_counter_ = registry.GetCounter("serve.admitted");
  retries_counter_ = registry.GetCounter("serve.retries");
  completed_counter_ = registry.GetCounter("serve.completed");
  errors_counter_ = registry.GetCounter("serve.errors");
  breaker_degraded_counter_ = registry.GetCounter("serve.breaker_degraded");
  cache_hits_counter_ = registry.GetCounter("serve.cache.hits");
  cache_stale_hits_counter_ = registry.GetCounter("serve.cache.stale_hits");
  cache_misses_counter_ = registry.GetCounter("serve.cache.misses");
  reader_blocked_counter_ = registry.GetCounter("online.reader_blocked");
  queue_depth_gauge_ = registry.GetGauge("serve.queue_depth");
  inflight_gauge_ = registry.GetGauge("serve.inflight");
  queue_seconds_ = registry.GetHistogram("serve.queue_seconds",
                                         metrics::LatencySecondsBounds());
  // Resolve the durability counters eagerly so /statusz and the
  // Prometheus exposition carry the whole serve.wal.* family (at zero)
  // from boot, before any WAL traffic.
  registry.GetCounter("serve.wal.appends");
  registry.GetCounter("serve.wal.fsyncs");
  registry.GetCounter("serve.wal.bytes");
  registry.GetCounter("serve.wal.recovered_mentions");
  registry.GetCounter("serve.wal.truncated_tail_bytes");
  registry.GetCounter("serve.wal.checkpoints");
  registry.GetCounter("online.epochs_published");
  request_log_ = std::make_unique<RequestLog>(options_.request_log);

  if (options_.workers <= 0) {
    options_.workers = std::max(1, ParallelismLevel() / 2);
  }
  options_.queue_capacity = std::max<size_t>(options_.queue_capacity, 1);
  options_.default_deadline_ms =
      std::max<int64_t>(options_.default_deadline_ms, 1);
  options_.max_deadline_ms =
      std::max(options_.max_deadline_ms, options_.default_deadline_ms);
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  // Durability-preserving order: finish admitted work and persist every
  // online stream (Drain syncs WALs and writes final checkpoints) before
  // any worker stops. Only requests racing in *during* this drain are
  // shed below.
  Drain();
  std::vector<std::unique_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
    while (!queue_.empty()) {
      orphans.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queue_depth_gauge_->Set(0.0);
  }
  queue_cv_.notify_all();
  for (std::unique_ptr<Pending>& pending : orphans) {
    if (pending->ds != nullptr) {
      pending->ds->breaker.OnAbandon(pending->decision);
    }
    FinishResponse(*pending, ShedResponse(pending->ds, "shutdown",
                                          "service shutting down"));
  }
  for (std::thread& worker : workers_) worker.join();
}

Status QueryService::RegisterDataset(std::string name, DatasetBundle bundle) {
  if (!ValidDatasetName(name)) {
    return Status::InvalidArgument(
        "RegisterDataset: name must be 1-128 chars of [A-Za-z0-9_-]");
  }
  if (bundle.data == nullptr || bundle.corpus == nullptr) {
    return Status::InvalidArgument(
        "RegisterDataset: bundle needs data and corpus");
  }
  if (bundle.data->size() == 0) {
    return Status::InvalidArgument("RegisterDataset: dataset is empty");
  }
  if (bundle.levels.empty() || bundle.levels.back().necessary == nullptr) {
    return Status::InvalidArgument(
        "RegisterDataset: the last level must carry a necessary predicate");
  }
  if (!bundle.scorer) {
    return Status::InvalidArgument("RegisterDataset: scorer must be set");
  }
  auto state = std::make_unique<DatasetState>(name, options_.breaker,
                                              options_.cache.capacity);
  state->bundle = std::move(bundle);
  state->breaker_gauge = metrics::Registry::Global().GetGauge(
      "serve.breaker_state." + name);
  DatasetState* raw = state.get();
  {
    std::unique_lock<std::shared_mutex> lock(datasets_mu_);
    if (datasets_.find(name) != datasets_.end()) {
      return Status::FailedPrecondition(
          "RegisterDataset: name already registered");
    }
    datasets_.emplace(std::move(name), std::move(state));
  }
  UpdateBreakerGauge(*raw);
  WarmIndexes(*raw);
  if (options_.calibrate_on_register) Calibrate(*raw);
  return Status::OK();
}

Status QueryService::RegisterOnline(std::string name,
                                    std::unique_ptr<topk::OnlineTopK> stream) {
  if (!ValidDatasetName(name)) {
    return Status::InvalidArgument(
        "RegisterOnline: name must be 1-128 chars of [A-Za-z0-9_-]");
  }
  if (stream == nullptr) {
    return Status::InvalidArgument("RegisterOnline: stream must be set");
  }
  auto state = std::make_unique<DatasetState>(name, options_.breaker,
                                              options_.cache.capacity);
  state->online = true;
  state->stream = std::move(stream);
  state->breaker_gauge = metrics::Registry::Global().GetGauge(
      "serve.breaker_state." + name);
  if (!options_.wal_dir.empty()) {
    // Recover before publishing: the dataset (and through it /readyz)
    // must not become visible until every acknowledged mention from the
    // previous life is back. A failed recovery aborts registration.
    Status recovered = RecoverOnline(*state);
    if (!recovered.ok()) return recovered;
  }
  if (state->stream->mention_count() > 0) {
    // Publish the initial epoch (recovered or preexisting in-memory
    // state) before the dataset is visible, so the very first query can
    // pin it without ever touching the writer lock. The id advances past
    // whatever the WAL/checkpoint restored, keeping epochs monotone
    // across restarts.
    std::unique_lock<std::shared_mutex> lock(state->stream_mu);
    state->stream->PublishEpoch();
    state->last_publish = Clock::now();
    state->ever_published = true;
  }
  DatasetState* raw = state.get();
  {
    std::unique_lock<std::shared_mutex> lock(datasets_mu_);
    if (datasets_.find(name) != datasets_.end()) {
      return Status::FailedPrecondition(
          "RegisterOnline: name already registered");
    }
    datasets_.emplace(std::move(name), std::move(state));
  }
  UpdateBreakerGauge(*raw);
  bool calibrate = options_.calibrate_on_register;
  {
    std::shared_lock<std::shared_mutex> lock(raw->stream_mu);
    calibrate = calibrate && raw->stream->group_count() > 0;
  }
  if (calibrate) Calibrate(*raw);
  return Status::OK();
}

Status QueryService::RecoverOnline(DatasetState& ds) {
  TOPKDUP_RETURN_IF_ERROR(EnsureDirectory(options_.wal_dir));
  const size_t preexisting = ds.stream->mention_count();

  WalReplay replay;
  auto wal_or = WriteAheadLog::Open(options_.wal_dir + "/" + ds.name + ".wal",
                                    options_.wal, &replay);
  TOPKDUP_RETURN_IF_ERROR(wal_or.status());
  ds.wal = std::move(wal_or).value();

  std::vector<CheckpointRef> checkpoints =
      ListCheckpoints(options_.wal_dir, ds.name);
  if (preexisting > 0 && (!checkpoints.empty() || !replay.records.empty())) {
    return Status::FailedPrecondition(
        "RegisterOnline: stream '" + ds.name + "' already holds " +
        std::to_string(preexisting) +
        " mentions but persisted WAL/checkpoint state exists — the two "
        "histories cannot be merged; register with an empty stream or a "
        "fresh wal_dir");
  }

  // Newest valid checkpoint wins; a corrupt one falls back to the next
  // generation (the WAL seq gap check below still catches a fallback that
  // cannot be made consistent).
  size_t restored = 0;
  for (const CheckpointRef& ref : checkpoints) {
    auto image_or = ReadFileToString(ref.path);
    if (!image_or.ok()) {
      TOPKDUP_LOG(Warning) << "checkpoint " << ref.path
                           << " unreadable: " << image_or.status().ToString();
      continue;
    }
    Status s = ds.stream->RestoreFromCheckpoint(image_or.value());
    if (s.ok()) {
      restored = ds.stream->mention_count();
      ds.ckpt_seq = ref.seq_no;
      break;
    }
    TOPKDUP_LOG(Warning) << "checkpoint " << ref.path
                         << " rejected: " << s.ToString();
  }

  // Replay the WAL tail. Frames below the restored count are already in
  // the checkpoint (a crash between checkpoint rename and WAL trim leaves
  // exactly this overlap); a frame above it means a hole in the history.
  size_t replayed = 0;
  for (const auto& [seq, payload] : replay.records) {
    const uint64_t count = ds.stream->mention_count();
    if (seq < count) continue;
    if (seq > count) {
      return Status::InvalidArgument(
          "wal replay for '" + ds.name + "': frame seq " +
          std::to_string(seq) + " leaves a gap after mention " +
          std::to_string(count) + " (missing history)");
    }
    auto mention_or = topk::DecodeMention(payload);
    TOPKDUP_RETURN_IF_ERROR(mention_or.status());
    TOPKDUP_RETURN_IF_ERROR(
        ds.stream->AddMention(std::move(mention_or).value()));
    ++replayed;
  }
  // Re-establish the epoch counter: the max of what the checkpoint image
  // restored (inside RestoreFromCheckpoint) and what the replayed WAL
  // frames were stamped with.
  ds.stream->RestoreEpochCounter(replay.max_epoch);
  if (restored + replayed > 0) {
    RecoveredMentionsCounter()->Add(restored + replayed);
    TOPKDUP_LOG(Info) << "dataset '" << ds.name << "': recovered "
                      << restored << " checkpointed + " << replayed
                      << " replayed mentions ("
                      << replay.truncated_tail_bytes
                      << " torn tail bytes truncated)";
  }

  // Make the recovered (or preexisting in-memory) state durable now, so
  // the WAL restarts empty and the next recovery is checkpoint-only.
  if (ds.stream->mention_count() > restored || replay.truncated_tail_bytes > 0) {
    std::unique_lock<std::shared_mutex> lock(ds.stream_mu);
    TOPKDUP_RETURN_IF_ERROR(CheckpointLocked(ds));
  } else if (!replay.records.empty()) {
    // Everything in the WAL was already covered by the checkpoint: trim.
    TOPKDUP_RETURN_IF_ERROR(ds.wal->Reset());
  }
  return Status::OK();
}

Status QueryService::CheckpointLocked(DatasetState& ds) {
  std::string image = ds.stream->SerializeCheckpoint();
  const uint64_t seq = ds.ckpt_seq + 1;
  TOPKDUP_RETURN_IF_ERROR(AtomicWriteFile(
      CheckpointPath(options_.wal_dir, ds.name, seq), image));
  ds.ckpt_seq = seq;
  // The checkpoint is durable (fsynced file + dir): the WAL's history is
  // now redundant and can be trimmed. A crash in between only leaves a
  // WAL whose frames all sit below the checkpoint count — replay skips
  // them.
  TOPKDUP_RETURN_IF_ERROR(ds.wal->Reset());
  ds.wal_bytes_since_ckpt = 0;
  if (seq > 2) DeleteCheckpointsBefore(options_.wal_dir, ds.name, seq - 1);
  CheckpointsCounter()->Add(1);
  return Status::OK();
}

Status QueryService::Ingest(std::string_view dataset, record::Record mention) {
  DatasetState* ds = FindDataset(dataset);
  if (ds == nullptr) {
    return Status::NotFound("Ingest: unknown dataset '" +
                            std::string(dataset) + "'");
  }
  if (!ds->online) {
    return Status::FailedPrecondition("Ingest: dataset '" + ds->name +
                                      "' is not an online stream");
  }
  std::unique_lock<std::shared_mutex> lock(ds->stream_mu);
  if (ds->wal == nullptr) {
    // Memory-only mode (no wal_dir): the pre-durability behavior, plus
    // the epoch publish that makes the mention visible to readers.
    Status status = ds->stream->AddMention(std::move(mention));
    if (status.ok()) MaybePublishEpoch(*ds);
    return status;
  }

  // WAL-first: the frame must be on the log (and per policy on disk)
  // before the in-memory apply, so an OK return is an honest durability
  // acknowledgement. Any failure rolls the log back to `pre` — the log
  // and the stream always agree, and a caller retry appends a fresh
  // frame at the same seq instead of a duplicate.
  const uint64_t seq = ds->stream->mention_count();
  const uint64_t pre = ds->wal->end_offset();
  const std::string payload = topk::EncodeMention(mention);
  // Stamp the frame with the epoch this mention will publish under, so
  // recovery replay restores the counter to where publication left off.
  Status status =
      ds->wal->Append(seq, payload, ds->stream->current_epoch() + 1);
  if (status.ok()) {
    status = ds->stream->AddMention(std::move(mention));
    if (!status.ok()) {
      Status rollback = ds->wal->TruncateTo(pre);
      if (!rollback.ok()) status = rollback;
    }
  }
  if (!status.ok()) {
    // Feed the dataset's breaker: sustained WAL failures (disk full,
    // injected faults) trip it just like query failures, shifting reads
    // to degraded answers while writes are broken.
    ds->breaker.OnFailure(CircuitBreaker::Decision::kProceed);
    UpdateBreakerGauge(*ds);
    return status;
  }
  // The mention is acknowledged (on the WAL) and applied; publish the
  // epoch that makes it visible to readers. A failed/rolled-back ingest
  // never reaches this point, so it can never leak into a published
  // epoch.
  MaybePublishEpoch(*ds);
  ds->wal_bytes_since_ckpt = ds->wal->appended_bytes();
  if (options_.checkpoint_bytes > 0 &&
      ds->wal_bytes_since_ckpt >= options_.checkpoint_bytes) {
    Status ckpt = CheckpointLocked(*ds);
    if (!ckpt.ok()) {
      // The ingest itself is acknowledged and durable (it is on the WAL);
      // a failed checkpoint only postpones the trim. Warn and move on —
      // the next threshold crossing or Drain() retries.
      TOPKDUP_LOG(Warning) << "checkpoint for dataset '" << ds->name
                           << "' failed: " << ckpt.ToString();
    }
  }
  return Status::OK();
}

std::future<QueryResponse> QueryService::Submit(QueryRequest request) {
  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  pending->admitted_at = Clock::now();
  std::future<QueryResponse> future = pending->promise.get_future();
  const QueryRequest& req = pending->request;

  if (req.k < 1 || req.r < 1) {
    QueryResponse response;
    response.status =
        Status::InvalidArgument("Submit: k and r must be >= 1");
    FinishResponse(*pending, std::move(response));
    return future;
  }
  DatasetState* ds = FindDataset(req.dataset);
  if (ds == nullptr) {
    QueryResponse response;
    response.status =
        Status::NotFound("Submit: unknown dataset '" + req.dataset + "'");
    FinishResponse(*pending, std::move(response));
    return future;
  }
  if (req.kind == QueryKind::kTopKRank && ds->online) {
    QueryResponse response;
    response.status = Status::InvalidArgument(
        "Submit: rank queries require a static dataset");
    FinishResponse(*pending, std::move(response));
    return future;
  }
  pending->ds = ds;
  const int64_t requested =
      req.deadline_ms > 0 ? req.deadline_ms : options_.default_deadline_ms;
  pending->budget_ms =
      std::max<int64_t>(1, std::min(requested, options_.max_deadline_ms));

  // Breaker first: an open breaker answers from the cache at ~zero cost,
  // so it must pre-empt the predicted-miss shed.
  pending->decision = ds->breaker.Admit();
  UpdateBreakerGauge(*ds);
  if (pending->decision == CircuitBreaker::Decision::kReject) {
    FinishResponse(*pending, DegradedFromCache(*ds, req));
    return future;
  }

  // Answer cache: a hit at the current epoch is bit-identical to
  // executing (published epochs are immutable), so serve it synchronously
  // — zero queue time, zero execution cost. A stale entry is served only
  // when the caller opted in (allow_stale), as a widened bounds-only
  // answer. Probes skip the cache: their purpose is to test the dataset.
  if (options_.cache.enabled && req.kind == QueryKind::kTopKCount &&
      pending->decision == CircuitBreaker::Decision::kProceed) {
    std::optional<AnswerCache::Entry> entry =
        ds->answer_cache.Lookup(req.k, req.r);
    if (entry.has_value()) {
      const uint64_t now_epoch =
          ds->online ? ds->stream->current_epoch() : 0;
      if (entry->epoch == now_epoch) {
        ds->breaker.OnAbandon(pending->decision);  // No-op for kProceed.
        cache_hits_counter_->Increment();
        // A hit is a served request: it enters the admitted/completed
        // ledger even though it never touches the queue.
        admitted_counter_->Increment();
        admitted_total_.fetch_add(1, std::memory_order_relaxed);
        completed_counter_->Increment();
        completed_total_.fetch_add(1, std::memory_order_relaxed);
        ds->served.fetch_add(1, std::memory_order_relaxed);
        pending->cache_disposition = "hit";
        QueryResponse response;
        response.status = Status::OK();
        response.outcome = ServedOutcome::kExact;
        response.result = entry->result;
        response.epoch = entry->epoch;
        response.epoch_mentions = entry->epoch_mentions;
        FinishResponse(*pending, std::move(response));
        return future;
      }
      if (req.allow_stale) {
        ds->breaker.OnAbandon(pending->decision);
        cache_stale_hits_counter_->Increment();
        admitted_counter_->Increment();
        admitted_total_.fetch_add(1, std::memory_order_relaxed);
        completed_counter_->Increment();
        completed_total_.fetch_add(1, std::memory_order_relaxed);
        ds->served.fetch_add(1, std::memory_order_relaxed);
        pending->cache_disposition = "stale_hit";
        QueryResponse response = BoundsOnlyFromEntry(*ds, req, *entry);
        response.result.degradation.stage = "serve_cache_stale";
        response.outcome = ServedOutcome::kDegraded;
        FinishResponse(*pending, std::move(response));
        return future;
      }
    }
    cache_misses_counter_->Increment();
    pending->cache_disposition = "miss";
  }

  if (options_.shed_on_predicted_miss && req.work_budget == 0) {
    // Primary estimate: the dataset's measured cost model (EWMA CPU and
    // work units from attributed attempts). Wall p50 only until the
    // model's first observation lands.
    const CostModel::Prediction predicted = ds->cost_model.Predict();
    const double predicted_ms = predicted.valid
                                    ? predicted.wall_seconds * 1000.0
                                    : ds->P50Seconds() * 1000.0;
    if (predicted_ms > static_cast<double>(pending->budget_ms)) {
      ds->breaker.OnAbandon(pending->decision);
      pending->shed_predicted_ms = predicted_ms;
      pending->shed_cpu_per_pair_ns = predicted.cpu_per_pair_ns;
      std::string message;
      if (predicted.valid) {
        const double wall_per_cpu =
            predicted.cpu_seconds > 0.0
                ? predicted.wall_seconds / predicted.cpu_seconds
                : 0.0;
        message = StrFormat(
            "Submit: predicted cost %.1fms exceeds budget %lldms "
            "(measured cpu/pair=%.1fns x %.0f pairs, cpu/posting=%.1fns "
            "x %.0f postings, wall/cpu=%.2f)",
            predicted_ms, static_cast<long long>(pending->budget_ms),
            predicted.cpu_per_pair_ns, predicted.pairs,
            predicted.cpu_per_posting_ns, predicted.postings,
            wall_per_cpu);
      } else {
        message = "Submit: budget below observed p50 cost";
      }
      TOPKDUP_LOG(Debug) << "predicted-miss shed for dataset '" << ds->name
                         << "': " << message;
      FinishResponse(*pending, ShedResponse(ds, "predicted_miss",
                                            std::move(message)));
      return future;
    }
  }

  std::unique_ptr<Pending> evicted;
  bool rejected_for_shutdown = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_) {
      rejected_for_shutdown = true;
    } else {
      if (queue_.size() >= options_.queue_capacity) {
        // Evict the *oldest* waiting request: workers serve newest-first,
        // so the stalest budget is the least likely to finish anyway.
        evicted = std::move(queue_.front());
        queue_.pop_front();
      }
      queue_.push_back(std::move(pending));
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
  }
  if (rejected_for_shutdown) {
    ds->breaker.OnAbandon(pending->decision);
    FinishResponse(*pending,
                   ShedResponse(ds, "shutdown", "service shutting down"));
    return future;
  }
  admitted_counter_->Increment();
  admitted_total_.fetch_add(1, std::memory_order_relaxed);
  queue_cv_.notify_one();
  if (evicted != nullptr) {
    if (evicted->ds != nullptr) {
      evicted->ds->breaker.OnAbandon(evicted->decision);
    }
    FinishResponse(*evicted, ShedResponse(evicted->ds, "queue_full",
                                          "Submit: admission queue full"));
  }
  return future;
}

QueryResponse QueryService::Execute(QueryRequest request) {
  return Submit(std::move(request)).get();
}

void QueryService::Drain() {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait(lock, [&] { return queue_.empty() && inflight_ == 0; });
  }
  FlushDurableState();
}

void QueryService::FlushDurableState() {
  std::vector<DatasetState*> online;
  {
    std::shared_lock<std::shared_mutex> lock(datasets_mu_);
    for (auto& [name, state] : datasets_) {
      if (state->online) online.push_back(state.get());
    }
  }
  for (DatasetState* ds : online) {
    std::unique_lock<std::shared_mutex> lock(ds->stream_mu);
    // Force any batched epoch out: after a Drain, everything acked must
    // be visible to readers, not just durable.
    if (ds->pending_publish) {
      ds->stream->PublishEpoch();
      ds->last_publish = Clock::now();
      ds->pending_publish = false;
    }
    if (ds->wal == nullptr) continue;
    Status s = ds->wal->Sync();
    if (!s.ok()) {
      TOPKDUP_LOG(Warning) << "wal sync for dataset '" << ds->name
                           << "' failed: " << s.ToString();
    }
    if (ds->wal_bytes_since_ckpt == 0) continue;
    s = CheckpointLocked(*ds);
    if (!s.ok()) {
      TOPKDUP_LOG(Warning) << "final checkpoint for dataset '" << ds->name
                           << "' failed: " << s.ToString()
                           << " (the synced WAL still covers the state)";
    }
  }
}

void QueryService::MaybePublishEpoch(DatasetState& ds) {
  if (options_.epoch_batch_ms > 0 && ds.ever_published) {
    const Clock::time_point now = Clock::now();
    if (now - ds.last_publish <
        std::chrono::milliseconds(options_.epoch_batch_ms)) {
      // Batched: readers keep the previous epoch until the window
      // elapses, Drain() forces it, or shutdown flushes it.
      ds.pending_publish = true;
      return;
    }
  }
  ds.stream->PublishEpoch();
  ds.last_publish = Clock::now();
  ds.ever_published = true;
  ds.pending_publish = false;
}

void QueryService::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      pending = std::move(queue_.back());  // LIFO: newest budget first.
      queue_.pop_back();
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      ++inflight_;
      inflight_gauge_->Set(static_cast<double>(inflight_));
    }
    Process(*pending);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --inflight_;
      inflight_gauge_->Set(static_cast<double>(inflight_));
    }
    drain_cv_.notify_all();
  }
}

void QueryService::Process(Pending& pending) {
  pending.queue_seconds = SecondsSince(pending.admitted_at);
  queue_seconds_->Observe(pending.queue_seconds);
  DatasetState& ds = *pending.ds;

  const int64_t remaining_ms =
      pending.budget_ms -
      static_cast<int64_t>(pending.queue_seconds * 1000.0);
  if (remaining_ms <= 0) {
    ds.breaker.OnAbandon(pending.decision);
    FinishResponse(pending,
                   ShedResponse(&ds, "expired_in_queue",
                                "budget expired while queued"));
    return;
  }

  // The breaker may have tripped while this request waited; serve the
  // cheap degraded answer instead of burning a worker. Probes always
  // execute — testing the dataset is their purpose.
  if (pending.decision == CircuitBreaker::Decision::kProceed &&
      pending.request.kind == QueryKind::kTopKCount &&
      ds.breaker.state() == BreakerState::kOpen) {
    FinishResponse(pending, DegradedFromCache(ds, pending.request));
    return;
  }

  QueryResponse response;
  RunAttempts(ds, pending, pending.decision, &response);
  FinishResponse(pending, std::move(response));
}

void QueryService::RunAttempts(DatasetState& ds, Pending& pending,
                               CircuitBreaker::Decision decision,
                               QueryResponse* response) {
  const Clock::time_point deadline_at =
      pending.admitted_at + std::chrono::milliseconds(pending.budget_ms);
  Status last_error;
  int attempts_run = 0;
  for (int attempt = 0;; ++attempt) {
    // Each attempt runs under a fresh slice of whatever budget is left, so
    // the retry loop can never exceed the caller's original deadline.
    const int64_t remaining = MillisUntil(deadline_at);
    if (attempt > 0 && remaining <= 0) break;
    Deadline deadline =
        pending.request.work_budget > 0
            ? Deadline::WithWorkBudget(pending.request.work_budget)
            : Deadline::AfterMillis(std::max<int64_t>(1, remaining));
    if (pending.request.cancel != nullptr) {
      deadline.set_cancel_token(pending.request.cancel);
    }
    const double cpu_before = pending.meter.CpuSeconds();
    const Clock::time_point start = Clock::now();
    StatusOr<QueryResponse> attempt_or = Status::Internal("attempt not run");
    {
      // Attribute this attempt's CPU — on this worker and on every pool
      // worker its regions fan out to — to the request's meter.
      resource::ScopedMeterAttach meter_attach(&pending.meter);
      attempt_or = RunOnce(ds, pending.request, deadline, pending.id);
    }
    const double exec_seconds = SecondsSince(start);
    const double attempt_cpu = pending.meter.CpuSeconds() - cpu_before;
    pending.attempt_seconds.push_back(exec_seconds);
    attempts_run = attempt + 1;
    if (attempt_or.ok()) {
      *response = std::move(attempt_or).value();
      response->attempts = attempt + 1;
      // Fold the attempt into the dataset's cost model: attributed CPU,
      // wall time, and the work units its result metrics carried.
      const metrics::MetricsSnapshot* attempt_work =
          pending.request.kind == QueryKind::kTopKRank
              ? (response->rank.has_value() ? &response->rank->pruning.metrics
                                            : nullptr)
              : &response->result.metrics;
      CostModel::Observation cost;
      cost.cpu_seconds = attempt_cpu;
      cost.wall_seconds = exec_seconds;
      if (attempt_work != nullptr) {
        cost.candidate_pairs =
            attempt_work->CounterValue("predicates.blocked_index.candidates");
        cost.postings_decoded = attempt_work->CounterValue(
            "predicates.blocked_index.postings_decoded");
        pending.meter.ChargeWork("candidate_pairs", cost.candidate_pairs);
        pending.meter.ChargeWork("postings_decoded", cost.postings_decoded);
      }
      ds.cost_model.Observe(cost);
      ds.RecordSample(exec_seconds);
      ds.served.fetch_add(1, std::memory_order_relaxed);
      ds.breaker.OnSuccess(decision);
      UpdateBreakerGauge(ds);
      completed_counter_->Increment();
      completed_total_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    last_error = attempt_or.status();
    if (!RetryPolicy::IsRetryable(last_error.code()) ||
        attempt >= options_.retry.max_retries) {
      break;
    }
    const int64_t backoff =
        options_.retry.BackoffMillis(pending.id, attempt + 1);
    if (backoff >= MillisUntil(deadline_at)) break;  // Cannot afford it.
    retries_counter_->Increment();
    retries_total_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
  response->status = std::move(last_error);
  response->outcome = ServedOutcome::kError;
  // Error responses previously reported attempts == 0; the wide-event
  // retries field made that visible, so report the attempts actually run.
  response->attempts = attempts_run;
  ds.errors.fetch_add(1, std::memory_order_relaxed);
  errors_counter_->Increment();
  ds.breaker.OnFailure(decision);
  UpdateBreakerGauge(ds);
}

StatusOr<QueryResponse> QueryService::RunOnce(DatasetState& ds,
                                              const QueryRequest& request,
                                              const Deadline& deadline,
                                              uint64_t query_id) {
  TOPKDUP_FAULT_RETURN_IF("serve.query");
  // The query_id arg on this span is the join key back to the request-log
  // line and any captured explain report for this query.
  trace::Span span("serve.query");
  if (query_id != 0) {
    span.AddArg("query_id", static_cast<int64_t>(query_id));
  }
  QueryResponse response;
  response.status = Status::OK();
  if (request.kind == QueryKind::kTopKRank) {
    topk::TopKRankOptions rank_options;
    rank_options.k = request.k;
    rank_options.prune_passes = options_.rank_prune_passes;
    rank_options.deadline = &deadline;
    rank_options.index_cache = &ds.index_cache;
    rank_options.query_id = query_id;
    TOPKDUP_ASSIGN_OR_RETURN(
        topk::TopKRankResult rank,
        topk::TopKRankQuery(*ds.bundle.data, ds.bundle.levels,
                            rank_options));
    response.outcome = rank.degradation.degraded
                           ? ServedOutcome::kDegraded
                           : ServedOutcome::kExact;
    response.rank = std::move(rank);
    return response;
  }

  topk::TopKCountOptions query_options = options_.count_defaults;
  query_options.r = request.r;
  query_options.deadline = &deadline;
  query_options.query_id = query_id;
  // Slow-query capture needs an explain report to snapshot, so arm one
  // (sampled) whenever slow detection is on and the caller's defaults
  // didn't already ask for it.
  if (request_log_->slow_enabled() && !query_options.explain) {
    query_options.explain = true;
    query_options.explain_sample_rate =
        options_.request_log.slow_explain_sample_rate;
  }
  // The parallel pool is process-wide and regions already serialize;
  // per-query overrides from concurrent workers would race, so leave the
  // global level alone.
  query_options.threads = 0;
  double snapshot_weight = 0.0;
  uint64_t snapshot_epoch = 0;
  uint64_t snapshot_mentions = 0;
  if (ds.online) {
    // Read-never-blocks: pin the published epoch (a shared_ptr copy under
    // a pointer-swap mutex) instead of taking the stream writer lock, so
    // reader latency is independent of ingest — even a WAL fsync in
    // flight cannot stall this query.
    std::shared_ptr<const topk::OnlineTopK::EpochSnapshot> pinned =
        ds.stream->PinEpoch();
    const topk::OnlineTopK::Snapshot* snapshot = nullptr;
    topk::OnlineTopK::Snapshot fallback;
    if (pinned != nullptr) {
      snapshot = &pinned->snapshot;
      snapshot_epoch = pinned->epoch;
    } else if (ds.stream->mention_count() > 0) {
      // Defensive only: the publish discipline (first ingest publishes,
      // RegisterOnline publishes recovered state) means a non-empty
      // stream always has a published epoch. Counted so the TSan stress
      // test can pin online.reader_blocked at zero.
      reader_blocked_counter_->Increment();
      std::unique_lock<std::shared_mutex> lock(ds.stream_mu);
      fallback = ds.stream->TakeSnapshot();
      snapshot = &fallback;
      snapshot_epoch = ds.stream->current_epoch();
    } else {
      return Status::FailedPrecondition("RunOnce: stream '" + ds.name +
                                        "' has no mentions yet");
    }
    snapshot_weight = snapshot->total_weight;
    snapshot_mentions = snapshot->mention_count;
    if (snapshot->reps.size() == 0) {
      return Status::FailedPrecondition("RunOnce: stream '" + ds.name +
                                        "' has no mentions yet");
    }
    response.epoch = snapshot_epoch;
    response.epoch_mentions = snapshot_mentions;
    query_options.k = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(request.k), snapshot->reps.size()));
    TOPKDUP_ASSIGN_OR_RETURN(
        response.result,
        ds.stream->QuerySnapshot(*snapshot, query_options));
  } else {
    query_options.k = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(request.k), ds.bundle.data->size()));
    // Static datasets resolve every stage's blocking index through the
    // dataset cache warmed at registration; online snapshots change their
    // item sets per snapshot and keep the per-query build.
    query_options.index_cache = &ds.index_cache;
    TOPKDUP_ASSIGN_OR_RETURN(
        response.result,
        topk::TopKCountQuery(*ds.bundle.data, ds.bundle.levels,
                             ds.bundle.scorer, query_options));
  }
  response.outcome = response.result.quality == topk::AnswerQuality::kExact
                         ? ServedOutcome::kExact
                         : ServedOutcome::kDegraded;
  if (response.result.quality == topk::AnswerQuality::kExact) {
    // Always populate (even with serving disabled): the cache is also the
    // breaker's bounds-only fallback. The entry's epoch weight — the
    // *published* weight of its snapshot, not the live stream weight — is
    // the sound widening basis for every later stale serve.
    AnswerCache::Entry entry;
    entry.result = response.result;
    entry.epoch = snapshot_epoch;
    entry.epoch_total_weight = snapshot_weight;
    entry.epoch_mentions = snapshot_mentions;
    ds.answer_cache.Insert(request.k, request.r, std::move(entry));
  }
  return response;
}

QueryResponse QueryService::BoundsOnlyFromEntry(
    DatasetState& ds, const QueryRequest& request,
    const AnswerCache::Entry& entry) {
  QueryResponse response;
  topk::TopKCountResult cached = entry.result;
  double widen = 0.0;
  uint64_t now_epoch = entry.epoch;
  if (ds.online) {
    // Epoch-based widening: the delta between the current *published*
    // weight and the entry's epoch weight. Both sides come from published
    // (immutable) epochs — never the live stream under the writer lock —
    // so the figure is stable, and because epochs ride WAL frames and
    // checkpoint images it survives recovery replay and restarts, unlike
    // the old capture-time wall snapshot.
    std::shared_ptr<const topk::OnlineTopK::EpochSnapshot> pinned =
        ds.stream->PinEpoch();
    if (pinned != nullptr) {
      now_epoch = pinned->epoch;
      widen =
          std::max(0.0, pinned->snapshot.total_weight -
                            entry.epoch_total_weight);
    }
  }
  // The stream is append-only with non-negative weights, so a captured
  // group can only have grown, and by at most the weight published since
  // its epoch: [captured, captured + widen] contains the true count.
  for (topk::TopKAnswerSet& answer : cached.answers) {
    if (answer.groups.size() > static_cast<size_t>(request.k)) {
      answer.groups.resize(static_cast<size_t>(request.k));
    }
    for (topk::AnswerGroup& group : answer.groups) {
      group.count_upper += widen;
    }
  }
  cached.quality = topk::AnswerQuality::kBoundsOnly;
  cached.exact_from_pruning = false;
  cached.degradation.degraded = true;
  cached.degradation.partial_stage = false;
  response.result = std::move(cached);
  response.status = Status::OK();
  response.epoch = entry.epoch;
  response.epoch_mentions = entry.epoch_mentions;
  response.staleness_weight = widen;
  response.cache = entry.epoch == now_epoch ? "hit" : "stale_hit";
  return response;
}

QueryResponse QueryService::DegradedFromCache(DatasetState& ds,
                                              const QueryRequest& request) {
  QueryResponse response;
  if (request.kind != QueryKind::kTopKCount || !request.allow_degraded) {
    response.status = Status::FailedPrecondition(
        "circuit breaker open for dataset '" + ds.name + "'");
    return response;
  }
  // Shape match first, freshest entry of any shape as the fallback — a
  // degraded answer for a nearby shape beats no answer.
  std::optional<AnswerCache::Entry> entry =
      ds.answer_cache.Lookup(request.k, request.r);
  if (!entry.has_value()) entry = ds.answer_cache.MostRecent();
  if (!entry.has_value()) {
    response.status = Status::FailedPrecondition(
        "circuit breaker open for dataset '" + ds.name +
        "' and no cached answer is available");
    return response;
  }
  response = BoundsOnlyFromEntry(ds, request, *entry);
  response.result.degradation.stage = "serve_breaker";
  response.outcome = ServedOutcome::kBreakerDegraded;
  if (response.cache == "hit") {
    cache_hits_counter_->Increment();
  } else {
    cache_stale_hits_counter_->Increment();
  }
  breaker_degraded_counter_->Increment();
  return response;
}

QueryResponse QueryService::ShedResponse(DatasetState* ds,
                                         const std::string& reason,
                                         std::string message) {
  QueryResponse response;
  response.status = Status::ResourceExhausted(std::move(message));
  response.outcome = ServedOutcome::kShed;
  response.shed_reason = reason;
  metrics::Registry::Global().GetCounter("serve.shed." + reason)->Increment();
  shed_total_.fetch_add(1, std::memory_order_relaxed);
  if (ds != nullptr) {
    ds->shed.fetch_add(1, std::memory_order_relaxed);
    if (reason != "shutdown") {
      // Overload counts toward tripping just like errors: a dataset
      // drowning in traffic should brown out to cached answers.
      ds->breaker.OnShed();
      UpdateBreakerGauge(*ds);
    }
  }
  return response;
}

void QueryService::FinishResponse(Pending& pending, QueryResponse response) {
  response.query_id = pending.id;
  if (response.cache.empty()) response.cache = pending.cache_disposition;
  response.queue_seconds = pending.queue_seconds;
  response.latency_seconds = SecondsSince(pending.admitted_at);
  response.cpu_seconds = pending.meter.CpuSeconds();
  response.stage_cpu_seconds = pending.meter.StageBreakdown();
  if (response.cpu_seconds > 0.0) {
    cpu_by_dataset_.Add(pending.request.dataset, response.cpu_seconds);
    for (const auto& [stage, cpu] : response.stage_cpu_seconds) {
      cpu_by_stage_.Add(stage, cpu);
    }
  }
  metrics::Registry::Global()
      .GetHistogram(std::string("serve.latency_seconds.") +
                        ServedOutcomeName(response.outcome),
                    metrics::LatencySecondsBounds())
      ->Observe(response.latency_seconds);
  if (request_log_->enabled()) {
    RequestLogEvent event;
    event.query_id = pending.id;
    event.dataset = pending.request.dataset;
    event.kind = pending.request.kind == QueryKind::kTopKRank ? "topk_rank"
                                                              : "topk_count";
    event.k = pending.request.k;
    event.r = pending.request.r;
    event.status = response.status.ok() ? "ok"
                                        : StatusCodeName(response.status.code());
    event.outcome = ServedOutcomeName(response.outcome);
    // Per-query work deltas travel inside the result; pick the snapshot
    // matching the query kind.
    const metrics::MetricsSnapshot* work = nullptr;
    if (pending.request.kind == QueryKind::kTopKRank) {
      if (response.rank.has_value()) {
        work = &response.rank->pruning.metrics;
        event.degraded = response.rank->degradation.degraded;
        event.quality = event.degraded ? "bounds_only" : "exact";
        if (event.degraded) {
          event.degradation_stage = response.rank->degradation.stage;
          event.degradation_reason =
              DeadlineReasonName(response.rank->degradation.reason);
        }
      }
    } else if (response.status.ok()) {
      work = &response.result.metrics;
      event.quality = topk::AnswerQualityName(response.result.quality);
      event.degraded = response.result.degradation.degraded;
      if (event.degraded) {
        event.degradation_stage = response.result.degradation.stage;
        event.degradation_reason =
            DeadlineReasonName(response.result.degradation.reason);
      }
    }
    if (work != nullptr) {
      for (const char* name :
           {"dedup.collapse.pair_evals", "dedup.prune.pair_evals",
            "dedup.lower_bound.cpn_evals",
            "predicates.blocked_index.postings_decoded",
            "predicates.blocked_index.candidates",
            "segment.scorer.cells_filled"}) {
        const uint64_t value = work->CounterValue(name);
        if (value != 0) event.work.emplace_back(name, value);
      }
    }
    event.epoch = response.epoch;
    event.cache = response.cache;
    event.staleness_weight = response.staleness_weight;
    event.shed_reason = response.shed_reason;
    event.attempts = response.attempts;
    event.retries = std::max(0, response.attempts - 1);
    event.queue_seconds = response.queue_seconds;
    event.latency_seconds = response.latency_seconds;
    event.attempt_seconds = pending.attempt_seconds;
    event.cpu_ms = response.cpu_seconds * 1000.0;
    event.cpu_stages_ms.reserve(response.stage_cpu_seconds.size());
    for (const auto& [stage, cpu] : response.stage_cpu_seconds) {
      event.cpu_stages_ms.emplace_back(stage, cpu * 1000.0);
    }
    event.shed_predicted_ms = pending.shed_predicted_ms;
    event.shed_cpu_per_pair_ns = pending.shed_cpu_per_pair_ns;
    event.slow = request_log_->slow_ms() > 0 &&
                 response.latency_seconds * 1000.0 >=
                     static_cast<double>(request_log_->slow_ms());
    request_log_->Record(event);
    if (event.slow && response.result.explain != nullptr) {
      // Stamp the query's measured resources onto a copy of the report:
      // the shared report must stay byte-stable for anyone else holding
      // it.
      auto annotated =
          std::make_shared<obs::ExplainReport>(*response.result.explain);
      annotated->epoch = response.epoch;
      annotated->has_resources = true;
      annotated->resources.cpu_ms = event.cpu_ms;
      annotated->resources.stages_ms = event.cpu_stages_ms;
      request_log_->CaptureSlow(event, std::move(annotated));
    }
  }
  pending.promise.set_value(std::move(response));
}

QueryService::DatasetState* QueryService::FindDataset(std::string_view name) {
  std::shared_lock<std::shared_mutex> lock(datasets_mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second.get();
}

void QueryService::WarmIndexes(DatasetState& ds) {
  auto& registry = metrics::Registry::Global();
  metrics::Counter* loaded_counter = registry.GetCounter("serve.index_loaded");
  metrics::Counter* built_counter = registry.GetCounter("serve.index_built");
  const size_t n = ds.bundle.data->size();
  // The item set every first-stage collapse (and the calibration query)
  // enumerates: the full corpus as MakeSingletonGroups representatives.
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  std::vector<const predicates::PairPredicate*> preds;
  for (const dedup::PredicateLevel& level : ds.bundle.levels) {
    for (const predicates::PairPredicate* pred :
         {level.sufficient, level.necessary}) {
      if (pred == nullptr) continue;
      if (std::find(preds.begin(), preds.end(), pred) != preds.end()) {
        continue;
      }
      preds.push_back(pred);
    }
  }
  for (const predicates::PairPredicate* pred : preds) {
    std::string path;
    if (!options_.index_dir.empty()) {
      path = options_.index_dir + "/" + ds.name + "-" + PredFileTag(*pred) +
             ".idx";
      StatusOr<predicates::BlockedIndex> from_disk =
          predicates::BlockedIndex::LoadFromFile(*pred, n, path);
      if (from_disk.ok() && CoversIdentityItems(from_disk.value(), n)) {
        ds.index_cache.Put(*pred, all, std::move(from_disk).value());
        loaded_counter->Increment();
        continue;
      }
      if (!from_disk.ok()) {
        TOPKDUP_LOG(Debug) << "no persisted index at " << path << ": "
                           << from_disk.status().ToString();
      }
    }
    std::shared_ptr<const predicates::BlockedIndex> built =
        ds.index_cache.GetOrBuild(*pred, all);
    built_counter->Increment();
    if (!path.empty()) {
      const Status persisted = built->SerializeToFile(path);
      if (!persisted.ok()) {
        TOPKDUP_LOG(Warning) << "failed to persist index to " << path
                             << ": " << persisted.ToString();
      }
    }
  }
}

void QueryService::Calibrate(DatasetState& ds) {
  // One bounded query seeds the cost estimate and the degraded-answer
  // cache so the breaker has something to serve from its first trip.
  QueryRequest request;
  request.dataset = ds.name;
  request.kind = QueryKind::kTopKCount;
  request.k = 5;
  request.r = 1;
  Deadline deadline = Deadline::AfterMillis(options_.default_deadline_ms);
  resource::ResourceMeter meter;
  const Clock::time_point start = Clock::now();
  StatusOr<QueryResponse> response = Status::Internal("calibration not run");
  {
    resource::ScopedMeterAttach meter_attach(&meter);
    response = RunOnce(ds, request, deadline, /*query_id=*/0);
  }
  if (response.ok()) {
    const double wall = SecondsSince(start);
    ds.RecordSample(wall);
    // Seed the cost model too, so the very first admission decision can
    // already cite a measured unit cost.
    const metrics::MetricsSnapshot& work = response.value().result.metrics;
    CostModel::Observation cost;
    cost.cpu_seconds = meter.CpuSeconds();
    cost.wall_seconds = wall;
    cost.candidate_pairs =
        work.CounterValue("predicates.blocked_index.candidates");
    cost.postings_decoded =
        work.CounterValue("predicates.blocked_index.postings_decoded");
    ds.cost_model.Observe(cost);
  } else {
    TOPKDUP_LOG(Warning) << "calibration query for dataset '" << ds.name
                         << "' failed: "
                         << response.status().ToString();
  }
}

void QueryService::UpdateBreakerGauge(DatasetState& ds) {
  ds.breaker_gauge->Set(
      static_cast<double>(static_cast<int>(ds.breaker.state())));
}

HealthSnapshot QueryService::Health() const {
  HealthSnapshot health;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    health.queue_depth = queue_.size();
    health.inflight = inflight_;
  }
  health.workers = options_.workers;
  health.admitted = admitted_total_.load(std::memory_order_relaxed);
  health.shed = shed_total_.load(std::memory_order_relaxed);
  health.retries = retries_total_.load(std::memory_order_relaxed);
  health.completed = completed_total_.load(std::memory_order_relaxed);
  bool any_serving = false;
  {
    std::shared_lock<std::shared_mutex> lock(datasets_mu_);
    health.datasets.reserve(datasets_.size());
    for (const auto& [name, state] : datasets_) {
      DatasetHealth ds;
      ds.name = name;
      ds.online = state->online;
      if (state->online) {
        // Lock-free: mention_count() reads an atomic and the epoch is an
        // atomic load, so a health probe never queues behind an ingest's
        // fsync.
        ds.records = state->stream->mention_count();
        ds.epoch = state->stream->current_epoch();
      } else {
        ds.records = state->bundle.data->size();
      }
      ds.index_bytes = state->index_cache.TotalSerializedBytes();
      ds.breaker = state->breaker.state();
      ds.p50_seconds = state->P50Seconds();
      ds.cost_model_json = state->cost_model.DebugJson();
      ds.served = state->served.load(std::memory_order_relaxed);
      ds.errors = state->errors.load(std::memory_order_relaxed);
      ds.shed = state->shed.load(std::memory_order_relaxed);
      if (ds.breaker != BreakerState::kOpen) any_serving = true;
      health.datasets.push_back(std::move(ds));
    }
  }
  health.ready = any_serving && !workers_.empty();
  return health;
}

}  // namespace topkdup::serve
