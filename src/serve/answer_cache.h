#ifndef TOPKDUP_SERVE_ANSWER_CACHE_H_
#define TOPKDUP_SERVE_ANSWER_CACHE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "topk/topk_query.h"

namespace topkdup::serve {

/// Per-dataset cache of exact TopK count answers keyed by query shape
/// (k, r) and stamped with the epoch they were computed at. The service
/// consults it on two paths:
///
///  - Normal serving: a hit at the *current* epoch is returned verbatim —
///    bit-identical to recomputing, because a published epoch is immutable.
///    A hit at an older epoch may be served as a degraded bounds-only
///    answer with `count_upper` widened by the weight published since the
///    entry's epoch (sound for an append-only stream with non-negative
///    weights: counts only grow, by at most the ingested weight).
///  - Breaker-open fallback: MostRecent() replaces the old single-slot
///    "last good answer" — same widening argument, any shape.
///
/// Epochs (not wall time) are the staleness basis: an entry records the
/// published total weight of its epoch, and the widening is the published
/// weight delta, which survives recovery replay and service restarts
/// because epoch ids and their weights are reconstructed from the WAL.
///
/// Small fixed capacity with LRU eviction; thread-safe (one mutex — the
/// service touches it once per request, never inside query execution).
class AnswerCache {
 public:
  struct Entry {
    topk::TopKCountResult result;
    /// Epoch the result was computed at.
    uint64_t epoch = 0;
    /// Published total stream weight at that epoch (widening basis).
    double epoch_total_weight = 0.0;
    /// Published mention count at that epoch (observability only).
    uint64_t epoch_mentions = 0;
  };

  explicit AnswerCache(size_t capacity = 32);

  /// The entry cached for shape (k, r), if any; bumps its LRU recency.
  std::optional<Entry> Lookup(int k, int r) const;

  /// The most recently *inserted* entry, any shape — the breaker-open
  /// fallback (freshest answer beats shape match when degraded).
  std::optional<Entry> MostRecent() const;

  /// Caches `entry` for shape (k, r), replacing any existing entry for
  /// that shape and evicting the least recently used slot when full.
  void Insert(int k, int r, Entry entry);

  size_t size() const;

 private:
  struct Slot {
    int k = 0;
    int r = 0;
    uint64_t lru_tick = 0;
    uint64_t insert_tick = 0;
    Entry entry;
  };

  mutable std::mutex mu_;
  mutable uint64_t tick_ = 0;
  size_t capacity_;
  // Mutable so a const Lookup can bump LRU recency under mu_.
  mutable std::vector<Slot> slots_;
};

}  // namespace topkdup::serve

#endif  // TOPKDUP_SERVE_ANSWER_CACHE_H_
