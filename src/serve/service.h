#ifndef TOPKDUP_SERVE_SERVICE_H_
#define TOPKDUP_SERVE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/resource_meter.h"
#include "common/status.h"
#include "dedup/pruned_dedup.h"
#include "predicates/corpus.h"
#include "predicates/pair_predicate.h"
#include "record/record.h"
#include "serve/answer_cache.h"
#include "serve/breaker.h"
#include "serve/cost_model.h"
#include "serve/request_log.h"
#include "serve/retry.h"
#include "serve/wal.h"
#include "topk/online.h"
#include "topk/rank_query.h"
#include "topk/topk_query.h"

namespace topkdup::serve {

/// What kind of query a request asks for.
enum class QueryKind : int {
  kTopKCount = 0,  // Algorithm 2 + §5 (TopKCountQuery / OnlineTopK).
  kTopKRank = 1,   // §7.1 (TopKRankQuery; static datasets only).
};

/// One query against a registered dataset.
struct QueryRequest {
  std::string dataset;
  QueryKind kind = QueryKind::kTopKCount;
  int k = 10;
  /// Plausible answers (the paper's R; count queries only).
  int r = 1;
  /// Caller's wall-clock budget. 0 uses the service default; any value is
  /// clamped to ServiceOptions::max_deadline_ms. The budget covers queue
  /// wait, every execution attempt, and every retry backoff — a retried
  /// request never exceeds it.
  int64_t deadline_ms = 0;
  /// When nonzero, each execution attempt runs under this deterministic
  /// work-unit budget instead of a wall-clock slice (tests and
  /// reproducible benches; the wall budget still governs queueing and
  /// retries).
  uint64_t work_budget = 0;
  /// Optional cooperative cancellation (not owned; must outlive the
  /// response future).
  const CancelToken* cancel = nullptr;
  /// Accept a bounds-only cached answer when the dataset's breaker is
  /// open. When false an open breaker yields FailedPrecondition instead.
  bool allow_degraded = true;
  /// Accept a cached answer computed at an *older* epoch, served as a
  /// degraded bounds-only result with count_upper widened by the weight
  /// published since that epoch (always sound — see AnswerCache). When
  /// false only a current-epoch cache hit short-circuits execution.
  bool allow_stale = false;
};

/// How the service disposed of a request.
enum class ServedOutcome : int {
  kExact = 0,            // Full-quality answer.
  kDegraded = 1,         // Deadline-degraded answer with sound intervals.
  kBreakerDegraded = 2,  // Bounds-only cached answer; breaker open.
  kShed = 3,             // Load-shed before execution (ResourceExhausted).
  kError = 4,            // Typed error (breaker, validation, or exhausted
                         // retries of a transient failure).
};

const char* ServedOutcomeName(ServedOutcome outcome);

struct QueryResponse {
  /// OK for kExact / kDegraded / kBreakerDegraded; the typed rejection or
  /// failure otherwise (ResourceExhausted = shed, FailedPrecondition =
  /// breaker open with no cached answer, Internal = transient failure
  /// surviving every retry).
  Status status;
  /// Count-query answer (kind == kTopKCount and status.ok()).
  topk::TopKCountResult result;
  /// Rank-query answer (kind == kTopKRank and status.ok()).
  std::optional<topk::TopKRankResult> rank;
  ServedOutcome outcome = ServedOutcome::kError;
  /// Service-assigned id, unique per Submit for the process lifetime. The
  /// same id is stamped on the query's trace spans, request-log line, and
  /// explain report, so a response in hand joins directly against the
  /// introspection plane.
  uint64_t query_id = 0;
  /// Shed reason ("queue_full", "predicted_miss", "expired_in_queue",
  /// "shutdown") when outcome == kShed; empty otherwise.
  std::string shed_reason;
  /// Execution attempts made (0 when shed before execution; retries make
  /// this > 1).
  int attempts = 0;
  /// Seconds spent queued before execution began.
  double queue_seconds = 0.0;
  /// Admission-to-response wall seconds (queue + attempts + backoffs).
  double latency_seconds = 0.0;
  /// CPU seconds the query's execution attempts charged to its
  /// ResourceMeter, across every pool worker the work fanned out to (0
  /// for requests that never executed). Identically the sum of
  /// stage_cpu_seconds.
  double cpu_seconds = 0.0;
  /// Per-stage CPU breakdown, sorted by stage name ("collapse",
  /// "lower_bound", "prune", "pair_scoring", "segment_dp", "embedding",
  /// "other").
  std::vector<std::pair<std::string, double>> stage_cpu_seconds;
  /// Epoch the answer was computed at (online datasets; 0 for static
  /// datasets and unanswered requests). An exact answer's epoch is the
  /// epoch its snapshot was pinned at; a cached answer's is the epoch the
  /// cache entry was computed at.
  uint64_t epoch = 0;
  /// Mention count of the pinned epoch's snapshot (self-describes the
  /// stream prefix the answer covers; online datasets only).
  uint64_t epoch_mentions = 0;
  /// Answer-cache disposition: "hit" (current-epoch, bit-identical to
  /// recomputing), "stale_hit" (older epoch, bounds widened), "miss"
  /// (executed), or empty when the cache was not consulted (static
  /// datasets, rank queries, cache disabled).
  std::string cache;
  /// Published weight ingested since the cached epoch — the amount
  /// count_upper was widened by (nonzero only for stale serves).
  double staleness_weight = 0.0;
};

/// Everything the service must own for a resident static dataset. The
/// predicates reference `corpus`, which references `data`; all three are
/// heap-allocated so the bundle can move without invalidating them.
struct DatasetBundle {
  std::unique_ptr<record::Dataset> data;
  std::unique_ptr<predicates::Corpus> corpus;
  /// Owning storage for the level predicates (any order).
  std::vector<std::unique_ptr<predicates::PairPredicate>> predicates;
  /// Levels for PrunedDedup, pointing into `predicates`. The last level
  /// must carry a necessary predicate.
  std::vector<dedup::PredicateLevel> levels;
  /// Pair scorer bound to `data`.
  topk::PairScoreFn scorer;
};

struct ServiceOptions {
  /// Query worker threads — the concurrency limiter. Each worker runs one
  /// query at a time; queries fan out internally on the shared pool
  /// (common/parallel.h), which serializes parallel regions, so workers
  /// beyond the pool's thread count only add queueing, not speed.
  /// <= 0 sizes against the pool: max(1, ParallelismLevel() / 2).
  int workers = 2;
  /// Bounded admission queue. Arrivals beyond capacity evict the oldest
  /// waiting request (LIFO service order — see Submit).
  size_t queue_capacity = 64;
  /// Per-request wall budget when the caller does not set one.
  int64_t default_deadline_ms = 1000;
  /// Upper clamp on any caller-requested budget.
  int64_t max_deadline_ms = 10000;
  /// Reject a request up front (ResourceExhausted) when its budget cannot
  /// cover the dataset's measured execution cost. The prediction comes
  /// from the dataset's CostModel (EWMA of attributed CPU, wall time, and
  /// work units, expressed as CPU per candidate pair / per posting
  /// decoded); until the model has a sample the observed wall p50 is the
  /// fallback. The refusal message cites the measured unit costs used.
  bool shed_on_predicted_miss = true;
  /// Retry/backoff schedule for transient (Internal) failures.
  RetryPolicy retry;
  /// Per-dataset circuit breaker configuration.
  BreakerOptions breaker;
  /// Run one calibration query at registration to seed the dataset's cost
  /// estimate and the bounds cache the breaker serves while open.
  bool calibrate_on_register = true;
  /// Defaults applied to every count query (k, r, and deadline are always
  /// overridden per request; threads stays 0 — the service must not fight
  /// over the process-wide parallelism).
  topk::TopKCountOptions count_defaults;
  /// prune_passes applied to rank queries.
  int rank_prune_passes = 2;
  /// Wide-event request logging (serve/request_log.h): one JSON line per
  /// query disposition, head-sampled for healthy answers, always emitted
  /// for degraded/shed/error/slow outcomes.
  RequestLogOptions request_log;
  /// Directory for persisted blocking-index images. When set,
  /// RegisterDataset loads each level predicate's full-corpus index from
  /// `<index_dir>/<dataset>-<tag>.idx` when a valid image exists
  /// (serve.index_loaded) and persists freshly built ones back
  /// (serve.index_built), so later process starts skip the builds
  /// entirely. Empty keeps indexes purely in-memory.
  std::string index_dir;
  /// Directory for online-dataset durability state. When set, every online
  /// dataset gets a write-ahead log (`<wal_dir>/<dataset>.wal`) and
  /// checksummed checkpoints (`<wal_dir>/<dataset>.<seq>.ckpt`):
  /// RegisterOnline recovers the newest valid checkpoint, replays the WAL
  /// tail, and only then publishes the dataset (so /readyz never flips
  /// before recovery completes); Ingest appends to the WAL before applying
  /// to memory. Empty keeps online streams purely in-memory (a crash loses
  /// them — the pre-durability behavior).
  std::string wal_dir;
  /// Fsync policy for the per-dataset WALs (see WalFsyncPolicy: acked
  /// ingests always survive process death; the policy bounds loss under
  /// machine failure).
  WalOptions wal;
  /// Checkpoint an online dataset after this many WAL bytes accumulate
  /// (the checkpoint then trims the WAL). Clean shutdown and Drain()
  /// always checkpoint regardless.
  uint64_t checkpoint_bytes = 4ull << 20;
  /// Answer-cache behavior (serve/answer_cache.h). The cache is always
  /// *populated* by exact count answers (it is also the breaker's
  /// bounds-only fallback); `enabled` gates only whether the normal
  /// serving path consults it before executing.
  struct CacheOptions {
    bool enabled = true;
    /// Cached query shapes per dataset (LRU beyond this).
    size_t capacity = 32;
  };
  CacheOptions cache;
  /// Epoch publication batching for online ingest. 0 publishes a fresh
  /// epoch after every successful ingest (every acked mention is
  /// immediately visible to queries). > 0 publishes at most once per
  /// interval — amortizes the O(mentions) snapshot build under ingest
  /// bursts; queries meanwhile keep reading the previous epoch, and
  /// Drain()/shutdown force-publish anything pending. The *first* ingest
  /// always publishes so an empty pin means an empty stream.
  int64_t epoch_batch_ms = 0;
};

/// Health snapshot suitable for a readiness probe.
struct DatasetHealth {
  std::string name;
  bool online = false;
  size_t records = 0;  // Records (static) or mentions (online).
  BreakerState breaker = BreakerState::kClosed;
  /// Observed p50 execution seconds (0 until a sample lands).
  double p50_seconds = 0.0;
  /// The dataset's measured cost model as one JSON object (unit CPU
  /// costs, EWMA work counts, predicted cost) for /statusz.
  std::string cost_model_json;
  uint64_t served = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;
  /// Serialized size of the dataset's warmed blocking indexes (0 for
  /// online streams, which build per-snapshot).
  uint64_t index_bytes = 0;
  /// Current published epoch (online datasets; 0 before the first
  /// publish and for static datasets).
  uint64_t epoch = 0;
};

struct HealthSnapshot {
  /// Accepting work: running, and at least one dataset has a closed or
  /// half-open breaker.
  bool ready = false;
  size_t queue_depth = 0;
  size_t inflight = 0;
  int workers = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t retries = 0;
  uint64_t completed = 0;
  std::vector<DatasetHealth> datasets;
};

/// A thread-safe resident query service over registered datasets.
///
/// Admission path for Submit():
///   1. Validation (dataset exists, k/r sane) — immediate typed error.
///   2. Budget derivation: caller deadline_ms or the service default,
///      clamped to max_deadline_ms. The budget covers everything.
///   3. Circuit breaker: an open breaker short-circuits to a bounds-only
///      cached answer (kBreakerDegraded) or FailedPrecondition — the
///      request never occupies a queue slot.
///   4. Predicted-miss shed: budget < observed p50 execution cost →
///      ResourceExhausted up front rather than queued to die.
///   5. Bounded queue: when full, the *oldest* waiting request is evicted
///      (ResourceExhausted) in favor of the arrival — combined with
///      workers popping newest-first (LIFO), fresh requests with live
///      budgets are served and stale ones absorb the shedding.
///
/// Execution (worker threads): re-shed if the budget expired in queue,
/// then run attempts under a fresh Deadline slice per attempt — wall
/// budget = remaining request budget, so a retried request can never
/// exceed its original budget. Transient (Internal) failures retry with
/// jittered exponential backoff; degraded-but-OK answers are answers and
/// are never retried. Every decision lands in the metrics registry
/// (serve.admitted, serve.shed.<reason>, serve.retries,
/// serve.breaker_state.<dataset>, serve.queue_depth, per-outcome latency
/// histograms).
///
/// Ingestion: online datasets take a writer lock per mention; after a
/// successful apply the ingest publishes (or batches, see epoch_batch_ms)
/// an immutable epoch snapshot. Queries never take the writer lock: they
/// pin the published epoch (a shared_ptr copy) and execute lock-free on
/// it (topk::OnlineTopK::QuerySnapshot), so reader tail latency is
/// independent of ingest latency — even with fsync=always WAL appends.
class QueryService {
 public:
  explicit QueryService(ServiceOptions options = {});
  /// Clean shutdown in a fixed, durability-preserving order: Drain() —
  /// which finishes every in-flight and queued query, then syncs each
  /// online dataset's WAL and writes a final checkpoint — runs *before*
  /// workers stop, so an acknowledged ingest can never be lost by
  /// destruction. Requests racing in during shutdown are shed (reason
  /// "shutdown") and the workers joined last.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers a resident static dataset. Validates the bundle (data,
  /// corpus, last-level necessary predicate, scorer) and optionally runs
  /// the calibration query.
  Status RegisterDataset(std::string name, DatasetBundle bundle);

  /// Registers an online (streaming) dataset. `stream` may already hold
  /// mentions (only when no persisted state exists for the name —
  /// FailedPrecondition otherwise, the two histories cannot be merged).
  /// With ServiceOptions::wal_dir set this performs crash recovery before
  /// the dataset becomes visible: newest valid checkpoint restored, WAL
  /// tail replayed (torn tail truncated; mid-file corruption surfaces as
  /// InvalidArgument and the dataset is not registered).
  Status RegisterOnline(std::string name,
                        std::unique_ptr<topk::OnlineTopK> stream);

  /// Ingests one mention into an online dataset (writer-locked). With a
  /// WAL the mention is appended and (per the fsync policy) synced
  /// *before* it is applied in memory; OK therefore means the mention
  /// survives kill -9. Failures are real and typed — IOError/Internal
  /// from the WAL layer (retryable; they feed the dataset's circuit
  /// breaker), InvalidArgument for a schema-mismatched mention — and
  /// always leave the log and the in-memory stream consistent with each
  /// other: a failed ingest is rolled back from the WAL, never half
  /// applied. Callers must check the Status, not TOPKDUP_CHECK it.
  Status Ingest(std::string_view dataset, record::Record mention);

  /// Admits a query; the future resolves when it is served, shed, or
  /// fails. Never blocks on query execution (immediate rejections resolve
  /// the future before returning).
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Submit + wait.
  QueryResponse Execute(QueryRequest request);

  /// Blocks until the queue is empty and no query is in flight, then
  /// syncs every online dataset's WAL and writes a checkpoint (when
  /// anything accumulated since the last one) — after Drain() returns,
  /// all acknowledged state is durable.
  void Drain();

  HealthSnapshot Health() const;

  const ServiceOptions& options() const { return options_; }

  /// The service's request log — never null; disabled logs answer with
  /// empty snapshots. The admin server reads /debug/queries through this.
  const RequestLog& request_log() const { return *request_log_; }

  /// Top CPU consumers over the sliding attribution window (the /statusz
  /// top-consumers table): by dataset and by pipeline stage.
  std::vector<std::pair<std::string, double>> TopCpuByDataset(
      size_t n) const {
    return cpu_by_dataset_.Top(n);
  }
  std::vector<std::pair<std::string, double>> TopCpuByStage(size_t n) const {
    return cpu_by_stage_.Top(n);
  }
  double cpu_window_seconds() const {
    return cpu_by_dataset_.window_seconds();
  }

 private:
  struct DatasetState;
  struct Pending;

  void WorkerLoop();
  void Process(Pending& pending);
  /// Runs the retry loop for one admitted request; fills the response.
  void RunAttempts(DatasetState& ds, Pending& pending,
                   CircuitBreaker::Decision decision,
                   QueryResponse* response);
  /// One execution attempt under a fresh deadline slice. `query_id` is
  /// stamped on the attempt's spans and (for armed count queries) its
  /// explain report; 0 for calibration runs.
  StatusOr<QueryResponse> RunOnce(DatasetState& ds,
                                  const QueryRequest& request,
                                  const Deadline& deadline,
                                  uint64_t query_id);
  /// Bounds-only answer from the dataset's cache (breaker open).
  QueryResponse DegradedFromCache(DatasetState& ds,
                                  const QueryRequest& request);
  QueryResponse ShedResponse(DatasetState* ds, const std::string& reason,
                             std::string message);
  void FinishResponse(Pending& pending, QueryResponse response);
  DatasetState* FindDataset(std::string_view name);
  /// Builds (or loads from options_.index_dir) the full-corpus blocking
  /// index of every distinct level predicate into the dataset's cache, so
  /// no request ever pays an index build.
  void WarmIndexes(DatasetState& ds);
  void Calibrate(DatasetState& ds);
  void UpdateBreakerGauge(DatasetState& ds);
  /// Crash recovery for one online dataset (wal_dir set): restore the
  /// newest valid checkpoint, replay the WAL tail, open the live WAL.
  /// Runs before the dataset is published; returns the typed error that
  /// blocked recovery otherwise.
  Status RecoverOnline(DatasetState& ds);
  /// Serializes the stream, writes checkpoint generation ds.ckpt_seq + 1
  /// atomically, trims the WAL, prunes old generations. Caller holds the
  /// dataset's stream writer lock.
  Status CheckpointLocked(DatasetState& ds);
  /// Sync + checkpoint every online dataset that accumulated WAL bytes,
  /// and force-publish any pending batched epoch (Drain, destructor).
  void FlushDurableState();
  /// Publishes a fresh epoch for the dataset, or defers it under the
  /// epoch_batch_ms policy. Caller holds the dataset's stream writer lock.
  void MaybePublishEpoch(DatasetState& ds);
  /// Shared widening: turns a cache entry into a degraded bounds-only
  /// response at the dataset's current published epoch (groups truncated
  /// to k, count_upper widened by the published weight delta). Used by
  /// both the stale-serve path and the breaker-open fallback.
  QueryResponse BoundsOnlyFromEntry(DatasetState& ds,
                                    const QueryRequest& request,
                                    const AnswerCache::Entry& entry);

  ServiceOptions options_;
  std::unique_ptr<RequestLog> request_log_;

  mutable std::shared_mutex datasets_mu_;
  std::map<std::string, std::unique_ptr<DatasetState>, std::less<>>
      datasets_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  size_t inflight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  /// Sliding-window CPU attribution feeding the /statusz top-consumers
  /// table; charged once per finished query from its meter.
  resource::CpuWindow cpu_by_dataset_;
  resource::CpuWindow cpu_by_stage_;

  std::atomic<uint64_t> next_request_id_{0};
  std::atomic<uint64_t> admitted_total_{0};
  std::atomic<uint64_t> shed_total_{0};
  std::atomic<uint64_t> retries_total_{0};
  std::atomic<uint64_t> completed_total_{0};

  // Registry handles resolved once.
  metrics::Counter* admitted_counter_;
  metrics::Counter* retries_counter_;
  metrics::Counter* completed_counter_;
  metrics::Counter* errors_counter_;
  metrics::Counter* breaker_degraded_counter_;
  metrics::Counter* cache_hits_counter_;
  metrics::Counter* cache_stale_hits_counter_;
  metrics::Counter* cache_misses_counter_;
  metrics::Counter* reader_blocked_counter_;
  metrics::Gauge* queue_depth_gauge_;
  metrics::Gauge* inflight_gauge_;
  metrics::Histogram* queue_seconds_;
};

}  // namespace topkdup::serve

#endif  // TOPKDUP_SERVE_SERVICE_H_
