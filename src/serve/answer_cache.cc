#include "serve/answer_cache.h"

#include <algorithm>
#include <utility>

namespace topkdup::serve {

AnswerCache::AnswerCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  slots_.reserve(capacity_);
}

std::optional<AnswerCache::Entry> AnswerCache::Lookup(int k, int r) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    if (slot.k == k && slot.r == r) {
      slot.lru_tick = ++tick_;
      return slot.entry;
    }
  }
  return std::nullopt;
}

std::optional<AnswerCache::Entry> AnswerCache::MostRecent() const {
  std::lock_guard<std::mutex> lock(mu_);
  const Slot* best = nullptr;
  for (const Slot& slot : slots_) {
    if (best == nullptr || slot.insert_tick > best->insert_tick) {
      best = &slot;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->entry;
}

void AnswerCache::Insert(int k, int r, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t now = ++tick_;
  for (Slot& slot : slots_) {
    if (slot.k == k && slot.r == r) {
      slot.entry = std::move(entry);
      slot.lru_tick = now;
      slot.insert_tick = now;
      return;
    }
  }
  if (slots_.size() < capacity_) {
    slots_.push_back(Slot{k, r, now, now, std::move(entry)});
    return;
  }
  // Evict the least recently used shape.
  Slot* victim = &slots_.front();
  for (Slot& slot : slots_) {
    if (slot.lru_tick < victim->lru_tick) victim = &slot;
  }
  *victim = Slot{k, r, now, now, std::move(entry)};
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace topkdup::serve
