#include "serve/breaker.h"

#include <algorithm>
#include <chrono>

namespace topkdup::serve {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kHalfOpen:
      return "half_open";
    case BreakerState::kOpen:
      return "open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options)
    : options_(std::move(options)),
      outcomes_(std::max<size_t>(options_.window, 1), false) {
  options_.window = outcomes_.size();
  options_.min_samples = std::max<size_t>(options_.min_samples, 1);
  options_.probe_quota = std::max(options_.probe_quota, 1);
}

int64_t CircuitBreaker::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CircuitBreaker::PushOutcomeLocked(bool failure) {
  if (count_ == outcomes_.size()) {
    if (outcomes_[next_]) --failures_;  // Evict the oldest outcome.
  } else {
    ++count_;
  }
  outcomes_[next_] = failure;
  if (failure) ++failures_;
  next_ = (next_ + 1) % outcomes_.size();
}

void CircuitBreaker::TripLocked() {
  state_ = BreakerState::kOpen;
  opened_at_ms_ = NowMs();
  probes_in_flight_ = 0;
  probe_successes_ = 0;
}

// A kReject is not a refusal to answer: the service turns it into a
// bounds-only response from the dataset's AnswerCache (DegradedFromCache),
// widening the cached upper bounds by the weight *published* since the
// entry's epoch. Epoch-based widening — not capture-time wall state — is
// what keeps the degraded answer sound across recovery replay and
// restarts; see serve/answer_cache.h.
CircuitBreaker::Decision CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kOpen) {
    if (NowMs() - opened_at_ms_ < options_.cooldown_ms) {
      return Decision::kReject;
    }
    state_ = BreakerState::kHalfOpen;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
  if (state_ == BreakerState::kHalfOpen) {
    if (probes_in_flight_ >= options_.probe_quota) return Decision::kReject;
    ++probes_in_flight_;
    return Decision::kProbe;
  }
  return Decision::kProceed;
}

void CircuitBreaker::OnSuccess(Decision decision) {
  std::lock_guard<std::mutex> lock(mu_);
  if (decision == Decision::kProbe) {
    probes_in_flight_ = std::max(0, probes_in_flight_ - 1);
    if (state_ != BreakerState::kHalfOpen) return;  // Reopened meanwhile.
    if (++probe_successes_ >= options_.probe_quota) {
      state_ = BreakerState::kClosed;
      count_ = failures_ = next_ = 0;  // Fresh window after recovery.
      std::fill(outcomes_.begin(), outcomes_.end(), false);
    }
    return;
  }
  if (state_ == BreakerState::kClosed) PushOutcomeLocked(false);
}

void CircuitBreaker::OnFailure(Decision decision) {
  std::lock_guard<std::mutex> lock(mu_);
  if (decision == Decision::kProbe) {
    probes_in_flight_ = std::max(0, probes_in_flight_ - 1);
    TripLocked();  // Any probe failure reopens with a fresh cooldown.
    return;
  }
  if (state_ != BreakerState::kClosed) return;
  PushOutcomeLocked(true);
  if (count_ >= options_.min_samples &&
      static_cast<double>(failures_) >=
          options_.trip_ratio * static_cast<double>(count_)) {
    TripLocked();
  }
}

void CircuitBreaker::OnAbandon(Decision decision) {
  std::lock_guard<std::mutex> lock(mu_);
  if (decision == Decision::kProbe) {
    probes_in_flight_ = std::max(0, probes_in_flight_ - 1);
  }
}

void CircuitBreaker::OnShed() { OnFailure(Decision::kProceed); }

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

size_t CircuitBreaker::window_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

size_t CircuitBreaker::window_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

}  // namespace topkdup::serve
