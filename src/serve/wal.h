#ifndef TOPKDUP_SERVE_WAL_H_
#define TOPKDUP_SERVE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace topkdup::serve {

/// When an appended record is forced to stable storage.
///
/// Under kill -9 (process death) every record whose Append returned OK
/// survives regardless of policy — the write() hit the page cache before
/// the acknowledgement. The policies differ only for machine-level failures
/// (power loss, kernel panic): kAlways bounds the loss there to zero
/// acknowledged records, kEveryN to at most N, kIntervalMs to one
/// interval's worth, and kNever gives no machine-crash guarantee at all.
enum class WalFsyncPolicy : int {
  kNever = 0,       // Never fsync from Append; only explicit Sync().
  kIntervalMs = 1,  // fsync when interval_ms elapsed since the last sync.
  kEveryN = 2,      // fsync every every_n appended records.
  kAlways = 3,      // fsync after every append.
};

const char* WalFsyncPolicyName(WalFsyncPolicy policy);

/// Parses "never", "interval", "every_n", or "always" (the --wal-fsync
/// flag spellings). Unknown text → InvalidArgument.
StatusOr<WalFsyncPolicy> ParseWalFsyncPolicy(std::string_view text);

struct WalOptions {
  WalFsyncPolicy fsync = WalFsyncPolicy::kAlways;
  /// kIntervalMs: maximum staleness of the newest unsynced record.
  int64_t interval_ms = 50;
  /// kEveryN: fsync once per this many appends.
  uint64_t every_n = 32;
};

/// What WriteAheadLog::Open found in an existing log file.
struct WalReplay {
  /// Every intact frame, in file order: (sequence number, payload).
  std::vector<std::pair<uint64_t, std::string>> records;
  /// Bytes of torn tail discarded (the file was truncated back to the end
  /// of the last intact frame before Open returned).
  uint64_t truncated_tail_bytes = 0;
  /// Largest epoch id stamped on any intact frame (0 if none carried one).
  /// Recovery uses this to re-establish the stream's epoch counter.
  uint64_t max_epoch = 0;
};

/// A per-dataset write-ahead log of CRC32-framed, length-prefixed records.
///
/// File layout: a 16-byte checksummed file header (magic, format version,
/// header CRC) followed by frames of
///
///   [u32 payload_len][u32 crc32][u64 seq][u64 epoch][payload_len bytes]
///
/// where the CRC covers seq + epoch + payload. Append writes one frame with a
/// single write() call and applies the fsync policy; a frame is therefore
/// either wholly present or a recognizable torn tail.
///
/// Open() scans an existing file frame by frame. An incomplete final frame
/// — or a checksum-failed frame that ends exactly at EOF, which is what a
/// torn sector write looks like — is a *torn tail*: the file is truncated
/// back to the last intact frame, the discarded byte count is reported
/// (metric serve.wal.truncated_tail_bytes), and Open succeeds. A
/// checksum-failed or malformed frame with more data after it cannot be a
/// tear; that is mid-file corruption and Open returns InvalidArgument —
/// callers must surface it, never silently serve a state with a hole.
///
/// Not thread-safe: the owner serializes Append/Sync/Reset (QueryService
/// holds the dataset's stream writer lock across ingest + append).
///
/// Fault sites: `wal.append` fires before any bytes are written;
/// `wal.fsync` fires wherever a sync would be issued (policy-triggered or
/// explicit). Both surface as typed Status from Append/Sync.
class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path`, replaying any existing
  /// intact frames into `replay` (may be null to discard them).
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, const WalOptions& options, WalReplay* replay);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one frame and applies the fsync policy. On any failure the
  /// file is rolled back to its pre-append size, so a failed Append leaves
  /// no partial frame behind (IOError if even the rollback failed — the
  /// log is then poisoned and every later call fails fast).
  /// `epoch` is the ingest epoch the record will publish under; it rides
  /// in the frame header so recovery can restore the epoch counter.
  Status Append(uint64_t seq, std::string_view payload, uint64_t epoch = 0);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Truncates the log back to just the file header — the post-checkpoint
  /// trim. Synced before returning.
  Status Reset();

  /// Rolls the log back to `offset` (a value previously read from
  /// end_offset()). The ingest path uses this to withdraw an appended
  /// frame whose in-memory apply then failed, keeping log and stream in
  /// lockstep; failure poisons the log like a failed internal rollback.
  Status TruncateTo(uint64_t offset);

  /// Current end-of-log offset (file header included).
  uint64_t end_offset() const { return end_offset_; }
  /// Bytes appended (frames only) since Open or the last Reset.
  uint64_t appended_bytes() const { return appended_bytes_; }
  const std::string& path() const { return path_; }

  /// Frame overhead per record, for sizing checkpoint thresholds.
  static constexpr size_t kFrameHeaderBytes = 24;

 private:
  WriteAheadLog(std::string path, WalOptions options, int fd,
                uint64_t end_offset);

  Status MaybeSync(bool force);
  Status RollbackTo(uint64_t offset);

  std::string path_;
  WalOptions options_;
  int fd_ = -1;
  uint64_t end_offset_ = 0;
  uint64_t appended_bytes_ = 0;
  uint64_t appends_since_sync_ = 0;
  int64_t last_sync_ms_ = 0;
  bool poisoned_ = false;
};

/// Writes `data` to `path` atomically: temp file in the same directory,
/// write + fsync, rename over `path`, fsync the directory. A reader never
/// observes a partial file; a crash leaves either the old file or the new
/// one (plus maybe a stray .tmp, which writers ignore and recovery
/// deletes).
Status AtomicWriteFile(const std::string& path, std::string_view data);

/// Reads a whole file. NotFound when it does not exist.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Creates `dir` (and parents) if missing.
Status EnsureDirectory(const std::string& dir);

/// One persisted checkpoint of an online dataset's stream state.
struct CheckpointRef {
  uint64_t seq_no = 0;  // Monotonic generation number.
  std::string path;
};

/// Path of checkpoint generation `seq_no`:
/// "<dir>/<dataset>.<seq_no as %08llu>.ckpt".
std::string CheckpointPath(const std::string& dir, const std::string& dataset,
                           uint64_t seq_no);

/// Lists `dataset`'s checkpoints under `dir`, newest generation first.
/// Stray "*.ckpt.tmp" leftovers from a crashed writer are deleted.
std::vector<CheckpointRef> ListCheckpoints(const std::string& dir,
                                           const std::string& dataset);

/// Deletes checkpoint generations older than `keep_from` (exclusive of
/// it), i.e. after checkpointing generation S call with S-1 to keep the
/// newest two.
void DeleteCheckpointsBefore(const std::string& dir,
                             const std::string& dataset, uint64_t keep_from);

}  // namespace topkdup::serve

#endif  // TOPKDUP_SERVE_WAL_H_
