#include "serve/request_log.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "common/log.h"
#include "common/strings.h"

namespace topkdup::serve {

namespace {

/// splitmix64 finalizer — the same deterministic mixing the explain
/// sampler uses, so the 1-in-N head sample is uniform over sequential
/// query ids instead of a stride.
uint64_t MixKey(uint64_t key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
}

void AppendJsonString(std::string& out, std::string_view text) {
  out.push_back('"');
  AppendJsonEscaped(out, text);
  out.push_back('"');
}

}  // namespace

std::string RequestLogEvent::ToJsonLine() const {
  std::string out;
  out.reserve(384);
  out += StrFormat("{\"event\":\"query\",\"query_id\":%llu,\"dataset\":",
                   static_cast<unsigned long long>(query_id));
  AppendJsonString(out, dataset);
  out += ",\"kind\":";
  AppendJsonString(out, kind);
  out += StrFormat(",\"k\":%d,\"r\":%d,\"status\":", k, r);
  AppendJsonString(out, status);
  out += ",\"outcome\":";
  AppendJsonString(out, outcome);
  out += ",\"quality\":";
  AppendJsonString(out, quality);
  out += StrFormat(",\"degraded\":%s", degraded ? "true" : "false");
  if (!degradation_stage.empty()) {
    out += ",\"degradation_stage\":";
    AppendJsonString(out, degradation_stage);
  }
  if (!degradation_reason.empty()) {
    out += ",\"degradation_reason\":";
    AppendJsonString(out, degradation_reason);
  }
  if (!shed_reason.empty()) {
    out += ",\"shed_reason\":";
    AppendJsonString(out, shed_reason);
  }
  out += StrFormat(",\"attempts\":%d,\"retries\":%d", attempts, retries);
  out += StrFormat(",\"queue_seconds\":%.6f,\"latency_seconds\":%.6f",
                   queue_seconds, latency_seconds);
  out += ",\"attempt_seconds\":[";
  for (size_t i = 0; i < attempt_seconds.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%.6f", attempt_seconds[i]);
  }
  out += "],\"work\":{";
  for (size_t i = 0; i < work.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("\"%s\":%llu", work[i].first,
                     static_cast<unsigned long long>(work[i].second));
  }
  out += StrFormat("},\"cpu_ms\":%.4f,\"cpu_stages\":{", cpu_ms);
  for (size_t i = 0; i < cpu_stages_ms.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    AppendJsonEscaped(out, cpu_stages_ms[i].first);
    out += StrFormat("\":%.4f", cpu_stages_ms[i].second);
  }
  out += "}";
  if (epoch != 0) {
    out += StrFormat(",\"epoch\":%llu",
                     static_cast<unsigned long long>(epoch));
  }
  if (!cache.empty()) {
    out += ",\"cache\":";
    AppendJsonString(out, cache);
    if (staleness_weight > 0.0) {
      out += StrFormat(",\"staleness_weight\":%.6f", staleness_weight);
    }
  }
  if (shed_predicted_ms > 0.0) {
    out += StrFormat(
        ",\"shed_predicted_ms\":%.3f,\"shed_cpu_per_pair_ns\":%.2f",
        shed_predicted_ms, shed_cpu_per_pair_ns);
  }
  out += StrFormat(",\"slow\":%s}", slow ? "true" : "false");
  return out;
}

RequestLog::RequestLog(RequestLogOptions options)
    : options_(std::move(options)) {
  auto& registry = metrics::Registry::Global();
  emitted_ = registry.GetCounter("serve.requestlog.emitted");
  sampled_out_ = registry.GetCounter("serve.requestlog.sampled_out");
  slow_captured_ = registry.GetCounter("serve.requestlog.slow_captured");
  rotations_ = registry.GetCounter("serve.requestlog.rotations");
  options_.recent_capacity = std::max<size_t>(options_.recent_capacity, 1);
  options_.slow_capacity = std::max<size_t>(options_.slow_capacity, 1);
  if (options_.enabled && !options_.path.empty()) {
    file_ = std::fopen(options_.path.c_str(), "a");
    if (file_ == nullptr) {
      TOPKDUP_LOG(Error) << "request log: cannot open " << options_.path;
    } else {
      // Appending to a pre-existing file: rotation thresholds count the
      // bytes already there, not just this process's writes.
      std::fseek(file_, 0, SEEK_END);
      const long size = std::ftell(file_);
      file_bytes_ = size > 0 ? static_cast<uint64_t>(size) : 0;
    }
  }
}

RequestLog::~RequestLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

bool RequestLog::AdmitOk(uint64_t query_id) const {
  if (options_.ok_sample_every == 0) return false;
  if (options_.ok_sample_every == 1) return true;
  return MixKey(query_id) % options_.ok_sample_every == 0;
}

bool RequestLog::Record(const RequestLogEvent& event) {
  if (!options_.enabled) return false;
  const bool healthy = event.status == "ok" && !event.degraded &&
                       !event.slow && event.outcome == "exact";
  if (healthy && !AdmitOk(event.query_id)) {
    sampled_out_->Increment();
    return false;
  }
  std::string line = event.ToJsonLine();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ != nullptr) {
      std::fputs(line.c_str(), file_);
      std::fputc('\n', file_);
      std::fflush(file_);
      file_bytes_ += line.size() + 1;
      if (options_.max_bytes > 0 && file_bytes_ > options_.max_bytes) {
        RotateLocked();
      }
    }
    recent_.push_back(std::move(line));
    while (recent_.size() > options_.recent_capacity) recent_.pop_front();
  }
  emitted_->Increment();
  return true;
}

void RequestLog::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  const std::string rotated = options_.path + ".1";
  if (std::rename(options_.path.c_str(), rotated.c_str()) != 0) {
    TOPKDUP_LOG(Error) << "request log: cannot rotate " << options_.path
                       << " to " << rotated;
  }
  // Reopen regardless: losing rotation is survivable, losing the sink
  // is not.
  file_ = std::fopen(options_.path.c_str(), "a");
  if (file_ == nullptr) {
    TOPKDUP_LOG(Error) << "request log: cannot reopen " << options_.path;
  }
  file_bytes_ = 0;
  rotations_->Increment();
}

void RequestLog::CaptureSlow(const RequestLogEvent& event,
                             std::shared_ptr<const obs::ExplainReport> report) {
  if (!options_.enabled) return;
  SlowCapture capture;
  capture.event_json = event.ToJsonLine();
  capture.report = std::move(report);
  {
    std::lock_guard<std::mutex> lock(mu_);
    slow_.push_back(std::move(capture));
    while (slow_.size() > options_.slow_capacity) slow_.pop_front();
  }
  slow_captured_->Increment();
}

std::vector<std::string> RequestLog::RecentLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(recent_.begin(), recent_.end());
}

std::string RequestLog::DebugQueriesJson() const {
  std::string out = "{\"schema_version\":1,\"slow\":[";
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < slow_.size(); ++i) {
      if (i > 0) out += ",";
      out += "{\"query\":";
      out += slow_[i].event_json;
      out += ",\"explain\":";
      out += slow_[i].report != nullptr ? slow_[i].report->ToJson() : "null";
      out += "}";
    }
    out += "],\"recent\":[";
    for (size_t i = 0; i < recent_.size(); ++i) {
      if (i > 0) out += ",";
      out += recent_[i];
    }
  }
  out += "]}";
  return out;
}

}  // namespace topkdup::serve
