#include "serve/retry.h"

#include <algorithm>
#include <cmath>

namespace topkdup::serve {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int64_t RetryPolicy::BackoffMillis(uint64_t request_id, int attempt) const {
  if (attempt < 1) return 0;
  double delay = static_cast<double>(base_backoff_ms) *
                 std::pow(multiplier, attempt - 1);
  delay = std::min(delay, static_cast<double>(max_backoff_ms));
  const double j = std::clamp(jitter, 0.0, 1.0);
  if (j > 0.0) {
    const uint64_t draw =
        SplitMix64(seed ^ SplitMix64(request_id * 0x9e3779b97f4a7c15ULL +
                                     static_cast<uint64_t>(attempt)));
    const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;
    delay *= (1.0 - j) + j * unit;
  }
  return std::max<int64_t>(0, static_cast<int64_t>(delay));
}

}  // namespace topkdup::serve
