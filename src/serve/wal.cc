#include "serve/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <dirent.h>

#include "common/crc32.h"
#include "common/faultpoint.h"
#include "common/metrics.h"

namespace topkdup::serve {
namespace {

// File header: [u64 magic][u32 version][u32 crc32 over the first 12 bytes].
constexpr uint64_t kWalMagic = 0x31'4C'41'57'50'44'4B'54ull;  // "TKDPWAL1"
constexpr uint32_t kWalVersion = 2;
constexpr size_t kFileHeaderBytes = 16;

metrics::Counter& AppendCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("serve.wal.appends");
  return *c;
}
metrics::Counter& FsyncCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("serve.wal.fsyncs");
  return *c;
}
metrics::Counter& BytesCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("serve.wal.bytes");
  return *c;
}
metrics::Counter& TruncatedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("serve.wal.truncated_tail_bytes");
  return *c;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

std::string BuildFileHeader() {
  std::string h;
  h.reserve(kFileHeaderBytes);
  PutU64(&h, kWalMagic);
  PutU32(&h, kWalVersion);
  PutU32(&h, Crc32(reinterpret_cast<const uint8_t*>(h.data()), 12));
  return h;
}

Status WriteFully(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("wal write failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return Status::IOError("fsync failed for " + what + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

// fsyncs the directory containing `path` so a rename/create in it is durable.
Status SyncParentDir(const std::string& path) {
  std::string dir = ".";
  auto slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return Status::IOError("open dir for fsync failed: " + dir + ": " +
                           std::strerror(errno));
  }
  Status s = SyncFd(dfd, dir);
  ::close(dfd);
  return s;
}

}  // namespace

const char* WalFsyncPolicyName(WalFsyncPolicy policy) {
  switch (policy) {
    case WalFsyncPolicy::kNever:
      return "never";
    case WalFsyncPolicy::kIntervalMs:
      return "interval";
    case WalFsyncPolicy::kEveryN:
      return "every_n";
    case WalFsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

StatusOr<WalFsyncPolicy> ParseWalFsyncPolicy(std::string_view text) {
  if (text == "never") return WalFsyncPolicy::kNever;
  if (text == "interval") return WalFsyncPolicy::kIntervalMs;
  if (text == "every_n") return WalFsyncPolicy::kEveryN;
  if (text == "always") return WalFsyncPolicy::kAlways;
  return Status::InvalidArgument("unknown wal fsync policy: \"" +
                                 std::string(text) +
                                 "\" (want never|interval|every_n|always)");
}

WriteAheadLog::WriteAheadLog(std::string path, WalOptions options, int fd,
                             uint64_t end_offset)
    : path_(std::move(path)),
      options_(options),
      fd_(fd),
      end_offset_(end_offset),
      last_sync_ms_(NowMs()) {}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    // Best effort: a clean owner already called Sync()/Reset(); this only
    // covers abandoned logs.
    ::fsync(fd_);
    ::close(fd_);
  }
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, const WalOptions& options, WalReplay* replay) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open wal " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Status::IOError("fstat failed for " + path + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);

  auto fail = [&](Status s) -> StatusOr<std::unique_ptr<WriteAheadLog>> {
    ::close(fd);
    return s;
  };

  if (size == 0) {
    // Fresh log: stamp the file header and make its existence durable so a
    // crash right after creation cannot leave a headerless file behind.
    std::string header = BuildFileHeader();
    Status s = WriteFully(fd, header.data(), header.size());
    if (s.ok()) s = SyncFd(fd, path);
    if (s.ok()) s = SyncParentDir(path);
    if (!s.ok()) return fail(std::move(s));
    return std::unique_ptr<WriteAheadLog>(
        new WriteAheadLog(path, options, fd, kFileHeaderBytes));
  }

  // Existing log: read the whole file and scan frame by frame.
  std::string contents(size, '\0');
  uint64_t got = 0;
  while (got < size) {
    ssize_t n = ::pread(fd, contents.data() + got, size - got, got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(Status::IOError("read wal " + path + ": " +
                                  std::strerror(errno)));
    }
    if (n == 0) break;  // Concurrent truncation; treat what we got as all.
    got += static_cast<uint64_t>(n);
  }
  contents.resize(got);
  const uint8_t* base = reinterpret_cast<const uint8_t*>(contents.data());

  if (contents.size() < kFileHeaderBytes) {
    // A crash before the header fsync completed. The file provably holds no
    // acknowledged record, so it is a torn tail in its entirety.
    uint64_t torn = contents.size();
    if (::ftruncate(fd, 0) != 0) {
      return fail(Status::IOError("truncate torn wal header " + path + ": " +
                                  std::strerror(errno)));
    }
    std::string header = BuildFileHeader();
    Status s = WriteFully(fd, header.data(), header.size());
    if (s.ok()) s = SyncFd(fd, path);
    if (!s.ok()) return fail(std::move(s));
    if (replay != nullptr) replay->truncated_tail_bytes += torn;
    TruncatedCounter().Add(torn);
    return std::unique_ptr<WriteAheadLog>(
        new WriteAheadLog(path, options, fd, kFileHeaderBytes));
  }
  if (GetU64(base) != kWalMagic) {
    return fail(Status::InvalidArgument("wal " + path +
                                        ": bad magic (not a WAL file)"));
  }
  uint32_t version = GetU32(base + 8);
  if (version != kWalVersion) {
    return fail(Status::InvalidArgument(
        "wal " + path + ": unsupported version " + std::to_string(version)));
  }
  if (GetU32(base + 12) != Crc32(base, 12)) {
    return fail(
        Status::InvalidArgument("wal " + path + ": file header CRC mismatch"));
  }

  // Frame scan. `pos` always points at the start of a (claimed) frame.
  uint64_t pos = kFileHeaderBytes;
  uint64_t valid_end = pos;
  while (pos < contents.size()) {
    uint64_t remaining = contents.size() - pos;
    if (remaining < kFrameHeaderBytes) break;  // Torn frame header.
    uint32_t payload_len = GetU32(base + pos);
    uint32_t crc = GetU32(base + pos + 4);
    uint64_t seq = GetU64(base + pos + 8);
    uint64_t epoch = GetU64(base + pos + 16);
    uint64_t frame_bytes = kFrameHeaderBytes + payload_len;
    if (frame_bytes > remaining) break;  // Frame extends past EOF: torn.
    // CRC covers the seq + epoch fields plus the payload, so a frame whose
    // length field was itself corrupted still fails verification.
    uint32_t actual = Crc32(base + pos + 8, 16 + payload_len);
    if (actual != crc) {
      if (pos + frame_bytes == contents.size()) break;  // Torn last frame.
      return fail(Status::InvalidArgument(
          "wal " + path + ": CRC mismatch in frame at offset " +
          std::to_string(pos) + " with " +
          std::to_string(contents.size() - pos - frame_bytes) +
          " bytes after it (mid-file corruption)"));
    }
    if (replay != nullptr) {
      replay->records.emplace_back(
          seq, contents.substr(pos + kFrameHeaderBytes, payload_len));
      replay->max_epoch = std::max(replay->max_epoch, epoch);
    }
    pos += frame_bytes;
    valid_end = pos;
  }

  uint64_t torn = contents.size() - valid_end;
  if (torn > 0) {
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      return fail(Status::IOError("truncate torn wal tail " + path + ": " +
                                  std::strerror(errno)));
    }
    Status s = SyncFd(fd, path);
    if (!s.ok()) return fail(std::move(s));
    if (replay != nullptr) replay->truncated_tail_bytes += torn;
    TruncatedCounter().Add(torn);
  }
  if (::lseek(fd, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    return fail(Status::IOError("seek wal " + path + ": " +
                                std::strerror(errno)));
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, options, fd, valid_end));
}

Status WriteAheadLog::Append(uint64_t seq, std::string_view payload,
                             uint64_t epoch) {
  if (poisoned_) {
    return Status::IOError("wal " + path_ +
                           " is poisoned after a failed rollback");
  }
  TOPKDUP_FAULT_RETURN_IF("wal.append");
  if (payload.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("wal payload too large");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  std::string body;
  body.reserve(16 + payload.size());
  PutU64(&body, seq);
  PutU64(&body, epoch);
  body.append(payload);
  PutU32(&frame, Crc32(body));
  frame.append(body);

  uint64_t pre = end_offset_;
  Status s = WriteFully(fd_, frame.data(), frame.size());
  if (!s.ok()) {
    Status rb = RollbackTo(pre);
    return rb.ok() ? s : rb;
  }
  end_offset_ += frame.size();
  appended_bytes_ += frame.size();
  ++appends_since_sync_;

  s = MaybeSync(/*force=*/options_.fsync == WalFsyncPolicy::kAlways);
  if (!s.ok()) {
    // The frame may not be on stable storage; withdraw it so the caller's
    // retry cannot create a duplicate.
    appended_bytes_ -= frame.size();
    --appends_since_sync_;
    Status rb = RollbackTo(pre);
    return rb.ok() ? s : rb;
  }
  AppendCounter().Add(1);
  BytesCounter().Add(frame.size());
  return Status::OK();
}

Status WriteAheadLog::MaybeSync(bool force) {
  bool want = force;
  switch (options_.fsync) {
    case WalFsyncPolicy::kNever:
      break;
    case WalFsyncPolicy::kAlways:
      want = true;
      break;
    case WalFsyncPolicy::kEveryN:
      if (options_.every_n > 0 && appends_since_sync_ >= options_.every_n) {
        want = true;
      }
      break;
    case WalFsyncPolicy::kIntervalMs:
      if (NowMs() - last_sync_ms_ >= options_.interval_ms) want = true;
      break;
  }
  if (!want) return Status::OK();
  TOPKDUP_FAULT_RETURN_IF("wal.fsync");
  Status s = SyncFd(fd_, path_);
  if (!s.ok()) return s;
  FsyncCounter().Add(1);
  appends_since_sync_ = 0;
  last_sync_ms_ = NowMs();
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (poisoned_) {
    return Status::IOError("wal " + path_ +
                           " is poisoned after a failed rollback");
  }
  if (appends_since_sync_ == 0) return Status::OK();
  TOPKDUP_FAULT_RETURN_IF("wal.fsync");
  Status s = SyncFd(fd_, path_);
  if (!s.ok()) return s;
  FsyncCounter().Add(1);
  appends_since_sync_ = 0;
  last_sync_ms_ = NowMs();
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  if (poisoned_) {
    return Status::IOError("wal " + path_ +
                           " is poisoned after a failed rollback");
  }
  if (::ftruncate(fd_, static_cast<off_t>(kFileHeaderBytes)) != 0) {
    return Status::IOError("wal reset truncate failed: " + path_ + ": " +
                           std::strerror(errno));
  }
  if (::lseek(fd_, static_cast<off_t>(kFileHeaderBytes), SEEK_SET) < 0) {
    return Status::IOError("wal reset seek failed: " + path_ + ": " +
                           std::strerror(errno));
  }
  Status s = SyncFd(fd_, path_);
  if (!s.ok()) return s;
  FsyncCounter().Add(1);
  end_offset_ = kFileHeaderBytes;
  appended_bytes_ = 0;
  appends_since_sync_ = 0;
  last_sync_ms_ = NowMs();
  return Status::OK();
}

Status WriteAheadLog::TruncateTo(uint64_t offset) {
  if (poisoned_) {
    return Status::IOError("wal " + path_ +
                           " is poisoned after a failed rollback");
  }
  if (offset > end_offset_) {
    return Status::InvalidArgument("wal TruncateTo past end of log");
  }
  uint64_t dropped = end_offset_ - offset;
  Status s = RollbackTo(offset);
  if (!s.ok()) return s;
  appended_bytes_ -= std::min(appended_bytes_, dropped);
  return Status::OK();
}

Status WriteAheadLog::RollbackTo(uint64_t offset) {
  if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
    poisoned_ = true;
    return Status::IOError("wal rollback failed for " + path_ + ": " +
                           std::strerror(errno) +
                           " (log poisoned; dataset needs recovery)");
  }
  end_offset_ = offset;
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  Status s = WriteFully(fd, data.data(), data.size());
  if (s.ok()) s = SyncFd(fd, tmp);
  ::close(fd);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status r = Status::IOError("rename " + tmp + " -> " + path + ": " +
                               std::strerror(errno));
    ::unlink(tmp.c_str());
    return r;
  }
  return SyncParentDir(path);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::IOError("read " + path + ": " + std::strerror(errno));
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status EnsureDirectory(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty directory path");
  std::string accum;
  size_t start = 0;
  if (dir[0] == '/') accum = "/";
  while (start < dir.size()) {
    size_t slash = dir.find('/', start);
    if (slash == std::string::npos) slash = dir.size();
    if (slash > start) {
      if (!accum.empty() && accum.back() != '/') accum.push_back('/');
      accum.append(dir, start, slash - start);
      if (::mkdir(accum.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status::IOError("mkdir " + accum + ": " + std::strerror(errno));
      }
    }
    start = slash + 1;
  }
  return Status::OK();
}

std::string CheckpointPath(const std::string& dir, const std::string& dataset,
                           uint64_t seq_no) {
  char num[24];
  std::snprintf(num, sizeof(num), "%08llu",
                static_cast<unsigned long long>(seq_no));
  return dir + "/" + dataset + "." + num + ".ckpt";
}

std::vector<CheckpointRef> ListCheckpoints(const std::string& dir,
                                           const std::string& dataset) {
  std::vector<CheckpointRef> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  const std::string prefix = dataset + ".";
  const std::string suffix = ".ckpt";
  while (struct dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // A checkpoint writer died mid-write; the rename never happened, so
      // the temp file carries no state anyone acknowledged.
      ::unlink((dir + "/" + name).c_str());
      continue;
    }
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    std::string mid =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (mid.empty() ||
        mid.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    CheckpointRef ref;
    ref.seq_no = std::strtoull(mid.c_str(), nullptr, 10);
    ref.path = dir + "/" + name;
    out.push_back(std::move(ref));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const CheckpointRef& a, const CheckpointRef& b) {
              return a.seq_no > b.seq_no;
            });
  return out;
}

void DeleteCheckpointsBefore(const std::string& dir,
                             const std::string& dataset, uint64_t keep_from) {
  for (const CheckpointRef& ref : ListCheckpoints(dir, dataset)) {
    if (ref.seq_no < keep_from) ::unlink(ref.path.c_str());
  }
}

}  // namespace topkdup::serve
