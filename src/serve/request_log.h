#ifndef TOPKDUP_SERVE_REQUEST_LOG_H_
#define TOPKDUP_SERVE_REQUEST_LOG_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "obs/explain.h"

namespace topkdup::serve {

/// Wide-event request logging for the resident service: one structured
/// JSON line per terminal query disposition, carrying everything an
/// operator needs to answer "what happened to query N" without
/// correlating five systems — id, dataset, shape (k/r), outcome, answer
/// quality, degradation stage/reason, shed reason, retries, queue wait,
/// per-attempt execution latency, and the per-stage work counters the
/// query charged.
///
/// Emission policy (the wide-event discipline): anything unusual — a
/// degraded, shed, errored, or slow query — is ALWAYS emitted; healthy
/// exact answers are head-sampled 1-in-`ok_sample_every` by a
/// deterministic hash of the query id, so steady-state volume is bounded
/// while every emitted line is a complete, self-contained event. The
/// sampling hash has no RNG: replaying a workload replays its exact
/// emission set, which is what lets CI pin `serve.requestlog.emitted`.
struct RequestLogOptions {
  /// Master switch. Off, the service skips event assembly entirely.
  bool enabled = true;
  /// JSONL sink path; empty keeps events in memory only (the ring below).
  /// Opened in append mode, so a restart investigates with the previous
  /// process's wide-event history still in place.
  std::string path;
  /// Healthy exact answers emit when MixKey(query_id) % ok_sample_every
  /// == 0. 1 emits every query; 0 suppresses all healthy-query lines.
  uint64_t ok_sample_every = 16;
  /// Latency threshold marking a query "slow" (always emitted, and its
  /// explain report — when one was armed — is captured for
  /// /debug/queries). 0 disables slow detection AND explain arming, the
  /// default: slow verdicts depend on wall time, so deterministic-replay
  /// configurations (the CI serve gate) must keep this off.
  int64_t slow_ms = 0;
  /// Detail sample rate for explain reports armed on count queries while
  /// slow capture is enabled (ExplainReport section summaries stay exact
  /// at any rate).
  double slow_explain_sample_rate = 0.1;
  /// Most recent emitted lines kept in memory for /debug/queries.
  size_t recent_capacity = 256;
  /// Captured slow-query explain reports kept for /debug/queries.
  size_t slow_capacity = 32;
  /// Rotation threshold for the JSONL sink: once the current file
  /// exceeds this many bytes after a write, it is renamed to
  /// "<path>.1" (replacing any previous rotation) and a fresh file is
  /// opened, so the sink holds at most ~2x max_bytes on disk. 0 (the
  /// default) never rotates. Counter: serve.requestlog.rotations.
  uint64_t max_bytes = 0;
};

/// One terminal query event. The service fills this in FinishResponse —
/// the single point every Submit() passes through exactly once — so line
/// count identities against serve.admitted/serve.shed.* hold by
/// construction.
struct RequestLogEvent {
  uint64_t query_id = 0;
  std::string dataset;
  std::string kind;     // "topk_count" | "topk_rank".
  int k = 0;
  int r = 0;
  /// "ok" for success; otherwise the CamelCase StatusCodeName exactly as
  /// Status::ToString prints it ("Internal", "ResourceExhausted"), so one
  /// grep token matches both the request log and the text logs.
  std::string status;
  std::string outcome;  // ServedOutcomeName.
  std::string quality;  // "exact" | "bounds_only" | "truncated_level".
  bool degraded = false;
  std::string degradation_stage;
  std::string degradation_reason;
  std::string shed_reason;  // Non-empty only for shed outcomes.
  int attempts = 0;
  int retries = 0;
  double queue_seconds = 0.0;
  double latency_seconds = 0.0;
  /// Wall seconds of each execution attempt, in order.
  std::vector<double> attempt_seconds;
  /// Total CPU milliseconds the query's attempts charged to its
  /// ResourceMeter (0 for queries that never executed: sheds,
  /// validation rejections).
  double cpu_ms = 0.0;
  /// Per-stage CPU milliseconds, sorted by stage name. The stage sum
  /// reconciles with cpu_ms within print rounding (each value is
  /// rendered at 1e-4 ms; see DESIGN.md §6i for the bound).
  std::vector<std::pair<std::string, double>> cpu_stages_ms;
  /// For predicted-miss sheds: the wall cost the model predicted and the
  /// measured unit cost it was built on, so the refusal is auditable.
  double shed_predicted_ms = 0.0;
  double shed_cpu_per_pair_ns = 0.0;
  /// Per-stage work counters charged by this query (best-effort under
  /// concurrency — the registry is process-global, so overlapping queries
  /// can bleed into each other's deltas).
  std::vector<std::pair<const char*, uint64_t>> work;
  /// Epoch the answer was computed at (0 = static dataset / unanswered);
  /// the same id appears on the response and any captured explain report,
  /// so one query id joins its pinned epoch across all three planes.
  uint64_t epoch = 0;
  /// Answer-cache disposition: "hit", "stale_hit", "miss", or empty when
  /// the cache was not consulted.
  std::string cache;
  /// Published weight the stale serve widened count_upper by (0 for
  /// fresh answers).
  double staleness_weight = 0.0;
  bool slow = false;

  /// The event as one JSON object (no trailing newline).
  std::string ToJsonLine() const;
};

class RequestLog {
 public:
  explicit RequestLog(RequestLogOptions options);
  ~RequestLog();

  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  const RequestLogOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled; }
  /// True when slow detection (and therefore explain arming) is on.
  bool slow_enabled() const {
    return options_.enabled && options_.slow_ms > 0;
  }
  int64_t slow_ms() const { return options_.slow_ms; }

  /// Deterministic head-sampling verdict for a healthy exact answer.
  bool AdmitOk(uint64_t query_id) const;

  /// Applies the emission policy to one terminal event: emits the JSON
  /// line (counter serve.requestlog.emitted, the recent ring, and the
  /// JSONL file when configured) unless the event is a healthy exact
  /// answer sampled out (serve.requestlog.sampled_out). Returns whether a
  /// line was emitted. Thread-safe.
  bool Record(const RequestLogEvent& event);

  /// Stores a slow query's event + explain report for /debug/queries
  /// (bounded; oldest evicted). Thread-safe.
  void CaptureSlow(const RequestLogEvent& event,
                   std::shared_ptr<const obs::ExplainReport> report);

  /// Most recent emitted lines, oldest first.
  std::vector<std::string> RecentLines() const;

  /// {"schema_version":1,"slow":[{...,"explain":{...}}],"recent":[...]}
  /// — the /debug/queries payload.
  std::string DebugQueriesJson() const;

  uint64_t emitted() const { return emitted_->Value(); }

 private:
  /// Renames the current file to "<path>.1" and reopens a fresh one.
  /// mu_ must be held.
  void RotateLocked();

  RequestLogOptions options_;
  metrics::Counter* emitted_;
  metrics::Counter* sampled_out_;
  metrics::Counter* slow_captured_;
  metrics::Counter* rotations_;

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  uint64_t file_bytes_ = 0;
  std::deque<std::string> recent_;
  struct SlowCapture {
    std::string event_json;
    std::shared_ptr<const obs::ExplainReport> report;
  };
  std::deque<SlowCapture> slow_;
};

}  // namespace topkdup::serve

#endif  // TOPKDUP_SERVE_REQUEST_LOG_H_
