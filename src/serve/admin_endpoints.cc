#include "serve/admin_endpoints.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "obs/process_stats.h"
#include "obs/profiler.h"

namespace topkdup::serve {

namespace {

using Clock = std::chrono::steady_clock;

void AppendJsonString(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// The /statusz payload. schema_version gates CI validation: bump it when
/// a field changes meaning, add freely without bumping.
std::string StatuszJson(const QueryService& service,
                        Clock::time_point started_at) {
  const HealthSnapshot health = service.Health();
  const metrics::MetricsSnapshot snapshot =
      metrics::Registry::Global().Snapshot();
  const double uptime =
      std::chrono::duration<double>(Clock::now() - started_at).count();
  const uint64_t cache_hits =
      snapshot.CounterValue("predicates.index_cache.hits");
  const uint64_t cache_misses =
      snapshot.CounterValue("predicates.index_cache.misses");
  const uint64_t cache_lookups = cache_hits + cache_misses;

  std::string out;
  out.reserve(1024);
  out += "{\"schema_version\":1,\"build\":{\"compiler\":";
#if defined(__VERSION__)
  AppendJsonString(out, __VERSION__);
#else
  out += "\"unknown\"";
#endif
#if defined(NDEBUG)
  out += ",\"optimized\":true}";
#else
  out += ",\"optimized\":false}";
#endif
  out += StrFormat(",\"uptime_seconds\":%.3f", uptime);
  out += StrFormat(
      ",\"serve\":{\"ready\":%s,\"queue_depth\":%zu,\"inflight\":%zu,"
      "\"workers\":%d,\"admitted\":%llu,\"completed\":%llu,\"shed\":%llu,"
      "\"retries\":%llu}",
      health.ready ? "true" : "false", health.queue_depth, health.inflight,
      health.workers, static_cast<unsigned long long>(health.admitted),
      static_cast<unsigned long long>(health.completed),
      static_cast<unsigned long long>(health.shed),
      static_cast<unsigned long long>(health.retries));
  out += StrFormat(
      ",\"index_cache\":{\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.4f,"
      "\"evictions\":%llu}",
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      cache_lookups == 0
          ? 0.0
          : static_cast<double>(cache_hits) /
                static_cast<double>(cache_lookups),
      static_cast<unsigned long long>(
          snapshot.CounterValue("predicates.index_cache.evictions")));
  out += StrFormat(
      ",\"request_log\":{\"emitted\":%llu,\"sampled_out\":%llu,"
      "\"slow_captured\":%llu}",
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.requestlog.emitted")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.requestlog.sampled_out")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.requestlog.slow_captured")));
  out += StrFormat(
      ",\"wal\":{\"appends\":%llu,\"fsyncs\":%llu,\"bytes\":%llu,"
      "\"recovered_mentions\":%llu,\"truncated_tail_bytes\":%llu,"
      "\"checkpoints\":%llu}",
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.wal.appends")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.wal.fsyncs")),
      static_cast<unsigned long long>(snapshot.CounterValue("serve.wal.bytes")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.wal.recovered_mentions")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.wal.truncated_tail_bytes")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.wal.checkpoints")));
  out += StrFormat(
      ",\"epochs\":{\"published\":%llu,\"reader_blocked\":%llu}",
      static_cast<unsigned long long>(
          snapshot.CounterValue("online.epochs_published")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("online.reader_blocked")));
  out += StrFormat(
      ",\"cache\":{\"hits\":%llu,\"stale_hits\":%llu,\"misses\":%llu}",
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.cache.hits")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.cache.stale_hits")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.cache.misses")));
  out += StrFormat(",\"trace\":{\"ring_capacity\":%zu,\"ring_total\":%llu}",
                   trace::RingCapacity(),
                   static_cast<unsigned long long>(trace::RingTotal()));
  const obs::ProcessSelfStats self = obs::ReadProcessSelfStats();
  out += StrFormat(",\"process\":{\"rss_bytes\":%llu,\"open_fds\":%llu}",
                   static_cast<unsigned long long>(self.rss_bytes),
                   static_cast<unsigned long long>(self.open_fds));
  const auto append_consumers =
      [&out](const std::vector<std::pair<std::string, double>>& top) {
        for (size_t i = 0; i < top.size(); ++i) {
          if (i > 0) out += ",";
          out += "{\"name\":";
          AppendJsonString(out, top[i].first);
          out += StrFormat(",\"cpu_seconds\":%.6f}", top[i].second);
        }
      };
  out += StrFormat(",\"top_cpu\":{\"window_seconds\":%.0f,\"datasets\":[",
                   service.cpu_window_seconds());
  append_consumers(service.TopCpuByDataset(5));
  out += "],\"stages\":[";
  append_consumers(service.TopCpuByStage(5));
  out += "]}";
  out += ",\"datasets\":[";
  for (size_t i = 0; i < health.datasets.size(); ++i) {
    const DatasetHealth& ds = health.datasets[i];
    if (i > 0) out += ",";
    out += "{\"name\":";
    AppendJsonString(out, ds.name);
    out += StrFormat(
        ",\"online\":%s,\"records\":%zu,\"breaker\":\"%s\","
        "\"p50_seconds\":%.6f,\"served\":%llu,\"errors\":%llu,"
        "\"shed\":%llu,\"index_bytes\":%llu",
        ds.online ? "true" : "false", ds.records,
        BreakerStateName(ds.breaker), ds.p50_seconds,
        static_cast<unsigned long long>(ds.served),
        static_cast<unsigned long long>(ds.errors),
        static_cast<unsigned long long>(ds.shed),
        static_cast<unsigned long long>(ds.index_bytes));
    if (ds.online) {
      out += StrFormat(",\"epoch\":%llu",
                       static_cast<unsigned long long>(ds.epoch));
    }
    // cost_model_json is already a JSON object — splice, don't escape.
    out += ",\"cost_model\":";
    out += ds.cost_model_json.empty() ? "null" : ds.cost_model_json;
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace

void RegisterAdminEndpoints(obs::AdminServer& server,
                            const QueryService& service) {
  const Clock::time_point started_at = Clock::now();
  server.Handle("/metrics", [] {
    obs::AdminResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body =
        metrics::PrometheusText(metrics::Registry::Global().Snapshot());
    return response;
  });
  server.Handle("/healthz", [] {
    return obs::AdminResponse{200, "text/plain; charset=utf-8", "ok\n", {}};
  });
  server.Handle("/readyz", [&service] {
    const bool ready = service.Health().ready;
    return obs::AdminResponse{ready ? 200 : 503,
                              "text/plain; charset=utf-8",
                              ready ? "ready\n" : "unready\n",
                              {}};
  });
  server.Handle("/statusz", [&service, started_at] {
    return obs::AdminResponse{200, "application/json",
                              StatuszJson(service, started_at), {}};
  });
  server.Handle("/tracez", [] {
    return obs::AdminResponse{200, "application/json",
                              trace::ChromeTraceJson(trace::RingSnapshot()),
                              {}};
  });
  server.Handle("/debug/queries", [&service] {
    return obs::AdminResponse{200, "application/json",
                              service.request_log().DebugQueriesJson(), {}};
  });
  server.Handle("/debug/profile", [](const obs::AdminRequest& request) {
    // Copy: Param returns a reference that may alias the fallback
    // temporary, which dies at the end of this full expression.
    const std::string seconds_text = request.Param("seconds", "1");
    char* end = nullptr;
    const double seconds = std::strtod(seconds_text.c_str(), &end);
    if (end == seconds_text.c_str() || seconds <= 0.0) {
      return obs::AdminResponse{400, "text/plain; charset=utf-8",
                                "bad seconds parameter\n", {}};
    }
    // Collect blocks the (serial) admin loop for the whole window —
    // concurrent admin requests queue in the listen backlog. Query
    // serving is unaffected: the profiler samples, it never blocks.
    StatusOr<std::string> collapsed =
        obs::Profiler::Global().Collect(seconds);
    if (!collapsed.ok()) {
      // FailedPrecondition == a concurrent session holds SIGPROF.
      const int http =
          collapsed.status().code() == StatusCode::kFailedPrecondition ? 409
                                                                       : 500;
      return obs::AdminResponse{http, "text/plain; charset=utf-8",
                                collapsed.status().ToString() + "\n", {}};
    }
    return obs::AdminResponse{200, "text/plain; charset=utf-8",
                              std::move(collapsed).value(), {}};
  });
}

}  // namespace topkdup::serve
