#include "serve/admin_endpoints.h"

#include <chrono>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"

namespace topkdup::serve {

namespace {

using Clock = std::chrono::steady_clock;

void AppendJsonString(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// The /statusz payload. schema_version gates CI validation: bump it when
/// a field changes meaning, add freely without bumping.
std::string StatuszJson(const QueryService& service,
                        Clock::time_point started_at) {
  const HealthSnapshot health = service.Health();
  const metrics::MetricsSnapshot snapshot =
      metrics::Registry::Global().Snapshot();
  const double uptime =
      std::chrono::duration<double>(Clock::now() - started_at).count();
  const uint64_t cache_hits =
      snapshot.CounterValue("predicates.index_cache.hits");
  const uint64_t cache_misses =
      snapshot.CounterValue("predicates.index_cache.misses");
  const uint64_t cache_lookups = cache_hits + cache_misses;

  std::string out;
  out.reserve(1024);
  out += "{\"schema_version\":1,\"build\":{\"compiler\":";
#if defined(__VERSION__)
  AppendJsonString(out, __VERSION__);
#else
  out += "\"unknown\"";
#endif
#if defined(NDEBUG)
  out += ",\"optimized\":true}";
#else
  out += ",\"optimized\":false}";
#endif
  out += StrFormat(",\"uptime_seconds\":%.3f", uptime);
  out += StrFormat(
      ",\"serve\":{\"ready\":%s,\"queue_depth\":%zu,\"inflight\":%zu,"
      "\"workers\":%d,\"admitted\":%llu,\"completed\":%llu,\"shed\":%llu,"
      "\"retries\":%llu}",
      health.ready ? "true" : "false", health.queue_depth, health.inflight,
      health.workers, static_cast<unsigned long long>(health.admitted),
      static_cast<unsigned long long>(health.completed),
      static_cast<unsigned long long>(health.shed),
      static_cast<unsigned long long>(health.retries));
  out += StrFormat(
      ",\"index_cache\":{\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.4f,"
      "\"evictions\":%llu}",
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      cache_lookups == 0
          ? 0.0
          : static_cast<double>(cache_hits) /
                static_cast<double>(cache_lookups),
      static_cast<unsigned long long>(
          snapshot.CounterValue("predicates.index_cache.evictions")));
  out += StrFormat(
      ",\"request_log\":{\"emitted\":%llu,\"sampled_out\":%llu,"
      "\"slow_captured\":%llu}",
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.requestlog.emitted")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.requestlog.sampled_out")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.requestlog.slow_captured")));
  out += StrFormat(",\"trace\":{\"ring_capacity\":%zu,\"ring_total\":%llu}",
                   trace::RingCapacity(),
                   static_cast<unsigned long long>(trace::RingTotal()));
  out += ",\"datasets\":[";
  for (size_t i = 0; i < health.datasets.size(); ++i) {
    const DatasetHealth& ds = health.datasets[i];
    if (i > 0) out += ",";
    out += "{\"name\":";
    AppendJsonString(out, ds.name);
    out += StrFormat(
        ",\"online\":%s,\"records\":%zu,\"breaker\":\"%s\","
        "\"p50_seconds\":%.6f,\"served\":%llu,\"errors\":%llu,"
        "\"shed\":%llu,\"index_bytes\":%llu}",
        ds.online ? "true" : "false", ds.records,
        BreakerStateName(ds.breaker), ds.p50_seconds,
        static_cast<unsigned long long>(ds.served),
        static_cast<unsigned long long>(ds.errors),
        static_cast<unsigned long long>(ds.shed),
        static_cast<unsigned long long>(ds.index_bytes));
  }
  out += "]}";
  return out;
}

}  // namespace

void RegisterAdminEndpoints(obs::AdminServer& server,
                            const QueryService& service) {
  const Clock::time_point started_at = Clock::now();
  server.Handle("/metrics", [] {
    obs::AdminResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body =
        metrics::PrometheusText(metrics::Registry::Global().Snapshot());
    return response;
  });
  server.Handle("/healthz", [] {
    return obs::AdminResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });
  server.Handle("/readyz", [&service] {
    const bool ready = service.Health().ready;
    return obs::AdminResponse{ready ? 200 : 503,
                              "text/plain; charset=utf-8",
                              ready ? "ready\n" : "unready\n"};
  });
  server.Handle("/statusz", [&service, started_at] {
    return obs::AdminResponse{200, "application/json",
                              StatuszJson(service, started_at)};
  });
  server.Handle("/tracez", [] {
    return obs::AdminResponse{200, "application/json",
                              trace::ChromeTraceJson(trace::RingSnapshot())};
  });
  server.Handle("/debug/queries", [&service] {
    return obs::AdminResponse{200, "application/json",
                              service.request_log().DebugQueriesJson()};
  });
}

}  // namespace topkdup::serve
