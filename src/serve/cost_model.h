#ifndef TOPKDUP_SERVE_COST_MODEL_H_
#define TOPKDUP_SERVE_COST_MODEL_H_

#include <cstdint>
#include <mutex>
#include <string>

namespace topkdup::serve {

/// Measured execution-cost model for one dataset, built from per-query
/// resource attribution: EWMA of the CPU consumed, the wall time, and the
/// work-unit counts (candidate pairs evaluated, postings decoded) of
/// completed attempts. The predicted-miss shed divides these into *unit*
/// costs — CPU per candidate pair, CPU per posting — so an admission
/// refusal can cite the measured rate it believed ("cpu/pair=41ns x
/// 240k pairs") instead of a bare wall-clock percentile.
///
/// The prediction is deliberately a typical-query estimate (ratio of
/// EWMAs, so cpu_per_pair x expected_pairs reproduces the CPU EWMA
/// exactly): admission happens before the query's own work counts exist,
/// so the expected unit counts are the model's, not the query's. The
/// wall prediction scales predicted CPU by the observed wall/CPU ratio,
/// which folds pool parallelism and scheduler interference back in.
class CostModel {
 public:
  /// `alpha` is the EWMA weight of the newest observation.
  explicit CostModel(double alpha = 0.2);

  struct Observation {
    double cpu_seconds = 0.0;
    double wall_seconds = 0.0;
    uint64_t candidate_pairs = 0;
    uint64_t postings_decoded = 0;
  };

  /// Folds one completed attempt into the model. Thread-safe.
  void Observe(const Observation& observation);

  struct Prediction {
    /// False until the first Observe(); callers fall back to the wall
    /// p50 while the model is empty.
    bool valid = false;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;
    /// Measured unit costs (0 when the unit was never observed).
    double cpu_per_pair_ns = 0.0;
    double cpu_per_posting_ns = 0.0;
    /// Expected unit counts for a typical query (EWMA).
    double pairs = 0.0;
    double postings = 0.0;
  };

  /// The model's current typical-query estimate. Thread-safe.
  Prediction Predict() const;

  uint64_t samples() const;

  /// One-line JSON for /statusz dataset entries.
  std::string DebugJson() const;

 private:
  const double alpha_;
  mutable std::mutex mu_;
  uint64_t samples_ = 0;
  double cpu_ = 0.0;
  double wall_ = 0.0;
  double pairs_ = 0.0;
  double postings_ = 0.0;
};

}  // namespace topkdup::serve

#endif  // TOPKDUP_SERVE_COST_MODEL_H_
