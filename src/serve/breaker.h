#ifndef TOPKDUP_SERVE_BREAKER_H_
#define TOPKDUP_SERVE_BREAKER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace topkdup::serve {

/// State of a per-dataset circuit breaker. Numeric values are the ones
/// exported on the `serve.breaker_state.<dataset>` gauge.
enum class BreakerState : int {
  kClosed = 0,    // Normal operation; outcomes feed the rolling window.
  kHalfOpen = 1,  // Cooldown elapsed; a probe quota tests the waters.
  kOpen = 2,      // Tripped; requests are served degraded until cooldown.
};

const char* BreakerStateName(BreakerState state);

struct BreakerOptions {
  /// Rolling window of the most recent request outcomes.
  size_t window = 32;
  /// Never trip before this many outcomes are in the window (a single
  /// failure on a cold service must not open the breaker).
  size_t min_samples = 8;
  /// Failure-or-shed fraction of the window at which the breaker opens.
  double trip_ratio = 0.5;
  /// How long an open breaker rejects before allowing half-open probes.
  int64_t cooldown_ms = 250;
  /// Half-open probe quota: at most this many probes in flight, and this
  /// many consecutive probe successes close the breaker again.
  int probe_quota = 2;
  /// Monotonic clock in milliseconds; tests inject a manual clock for
  /// deterministic state-machine coverage. Null uses steady_clock.
  std::function<int64_t()> now_ms;
};

/// Windowed per-dataset circuit breaker.
///
/// State machine: Closed --(failure/shed rate over the window >=
/// trip_ratio)--> Open --(cooldown elapses)--> HalfOpen --(probe_quota
/// consecutive probe successes)--> Closed, or --(any probe failure)-->
/// Open again with a fresh cooldown.
///
/// The caller (QueryService) pairs every Admit() == kProceed/kProbe with
/// exactly one OnSuccess/OnFailure carrying the same decision, and reports
/// admission-queue sheds via OnShed(): overload counts toward tripping
/// just like errors, so a dataset drowning in traffic stops accepting more
/// work it cannot finish. Thread-safe.
class CircuitBreaker {
 public:
  enum class Decision {
    kProceed,  // Closed: execute normally.
    kProbe,    // HalfOpen: execute; the outcome decides reopen vs close.
    kReject,   // Open (or probe quota busy): serve degraded / typed error.
  };

  explicit CircuitBreaker(BreakerOptions options);

  /// Admission decision for one request. May transition Open -> HalfOpen
  /// when the cooldown has elapsed.
  Decision Admit();

  /// Outcome of a request previously admitted with `decision`.
  void OnSuccess(Decision decision);
  void OnFailure(Decision decision);

  /// The request admitted with `decision` never executed (shed in queue,
  /// shutdown). Releases a probe slot without judging the dataset — an
  /// abandoned probe says nothing about its health.
  void OnAbandon(Decision decision);

  /// An admission-queue shed of a request for this dataset (counted into
  /// the window as a failure-class outcome; ignored while not Closed so an
  /// open breaker does not feed on its own rejections).
  void OnShed();

  BreakerState state() const;

  /// Outcomes currently in the window and how many are failures.
  size_t window_size() const;
  size_t window_failures() const;

 private:
  int64_t NowMs() const;
  void PushOutcomeLocked(bool failure);
  void TripLocked();

  BreakerOptions options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  std::vector<bool> outcomes_;  // Ring buffer, true = failure.
  size_t next_ = 0;
  size_t count_ = 0;
  size_t failures_ = 0;
  int64_t opened_at_ms_ = 0;
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
};

}  // namespace topkdup::serve

#endif  // TOPKDUP_SERVE_BREAKER_H_
