#ifndef TOPKDUP_SERVE_RETRY_H_
#define TOPKDUP_SERVE_RETRY_H_

#include <cstdint>

#include "common/status.h"

namespace topkdup::serve {

/// Jittered exponential retry schedule for transient query failures.
///
/// Only Status::Internal is retryable: it is the code the fault-injection
/// sites (common/faultpoint.h) and the thread pool's soft-fail channel
/// produce for transient mid-pipeline failures. Everything else — invalid
/// arguments, shed/breaker rejections (ResourceExhausted,
/// FailedPrecondition), not-found datasets — is deterministic and retrying
/// it would only burn the caller's budget.
///
/// The jitter draw is a pure function of (seed, request_id, attempt) via
/// splitmix64, so a service configured with a fixed seed replays the same
/// backoff schedule run over run — which is what lets the load bench's
/// retry counters be gated as deterministic keys.
struct RetryPolicy {
  /// Retries beyond the first attempt (0 disables retrying).
  int max_retries = 2;
  /// Pre-jitter delay before the first retry.
  int64_t base_backoff_ms = 5;
  /// Exponential growth factor per additional retry.
  double multiplier = 2.0;
  /// Pre-jitter cap on any single delay.
  int64_t max_backoff_ms = 250;
  /// Fraction of the delay drawn uniformly: the actual delay lies in
  /// [(1 - jitter) * d, d). 0 = fully deterministic delays, 1 = full
  /// jitter. Jitter decorrelates retry storms across queued requests.
  double jitter = 0.5;
  /// Seed for the deterministic jitter draws.
  uint64_t seed = 1;

  /// True when a failure with this code is transient and worth retrying.
  static bool IsRetryable(StatusCode code) {
    return code == StatusCode::kInternal;
  }

  /// Backoff in milliseconds before retry number `attempt` (1-based: 1 is
  /// the first retry) of request `request_id`. Always >= 0.
  int64_t BackoffMillis(uint64_t request_id, int attempt) const;
};

}  // namespace topkdup::serve

#endif  // TOPKDUP_SERVE_RETRY_H_
