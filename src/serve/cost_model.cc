#include "serve/cost_model.h"

#include <algorithm>

#include "common/strings.h"

namespace topkdup::serve {

CostModel::CostModel(double alpha)
    : alpha_(std::clamp(alpha, 0.01, 1.0)) {}

void CostModel::Observe(const Observation& observation) {
  std::lock_guard<std::mutex> lock(mu_);
  const double cpu = std::max(observation.cpu_seconds, 0.0);
  const double wall = std::max(observation.wall_seconds, 0.0);
  const double pairs = static_cast<double>(observation.candidate_pairs);
  const double postings = static_cast<double>(observation.postings_decoded);
  if (samples_ == 0) {
    cpu_ = cpu;
    wall_ = wall;
    pairs_ = pairs;
    postings_ = postings;
  } else {
    cpu_ += alpha_ * (cpu - cpu_);
    wall_ += alpha_ * (wall - wall_);
    pairs_ += alpha_ * (pairs - pairs_);
    postings_ += alpha_ * (postings - postings_);
  }
  ++samples_;
}

CostModel::Prediction CostModel::Predict() const {
  std::lock_guard<std::mutex> lock(mu_);
  Prediction prediction;
  if (samples_ == 0) return prediction;
  prediction.valid = true;
  prediction.pairs = pairs_;
  prediction.postings = postings_;
  if (pairs_ > 0.0) prediction.cpu_per_pair_ns = cpu_ / pairs_ * 1e9;
  if (postings_ > 0.0) {
    prediction.cpu_per_posting_ns = cpu_ / postings_ * 1e9;
  }
  prediction.cpu_seconds = cpu_;
  prediction.wall_seconds = wall_;
  return prediction;
}

uint64_t CostModel::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::string CostModel::DebugJson() const {
  const Prediction p = Predict();
  uint64_t n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = samples_;
  }
  return StrFormat(
      "{\"samples\":%llu,\"cpu_per_pair_ns\":%.2f,"
      "\"cpu_per_posting_ns\":%.2f,\"pairs\":%.0f,\"postings\":%.0f,"
      "\"predicted_cpu_ms\":%.3f,\"predicted_wall_ms\":%.3f}",
      static_cast<unsigned long long>(n), p.cpu_per_pair_ns,
      p.cpu_per_posting_ns, p.pairs, p.postings, p.cpu_seconds * 1000.0,
      p.wall_seconds * 1000.0);
}

}  // namespace topkdup::serve
