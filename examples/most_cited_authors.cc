// Example: "compile the most cited authors in a citation database created
// through noisy extraction" (one of the paper's motivating scenarios).
//
// Generates a synthetic Citeseer-like corpus of author-mention records
// (each weighted by its paper's citation count), then answers a TopK count
// query with R alternative answers — without ever deduplicating the full
// dataset.
//
//   ./build/examples/most_cited_authors [--records=N] [--k=N] [--r=N]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/timer.h"
#include "datagen/citation_gen.h"
#include "predicates/citation.h"
#include "predicates/corpus.h"
#include "predicates/generic.h"
#include "sim/similarity.h"
#include "text/tokenize.h"
#include "topk/topk_query.h"

namespace {

int64_t FlagOr(int argc, char** argv, const std::string& key,
               int64_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtoll(arg.c_str() + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topkdup;

  datagen::CitationGenOptions gen;
  gen.num_records = static_cast<size_t>(FlagOr(argc, argv, "records", 20000));
  gen.num_authors = gen.num_records / 5;
  const int k = static_cast<int>(FlagOr(argc, argv, "k", 10));
  const int r = static_cast<int>(FlagOr(argc, argv, "r", 2));

  Timer timer;
  auto data_or = datagen::GenerateCitations(gen);
  if (!data_or.ok()) return 1;
  const record::Dataset& data = data_or.value();
  std::printf("generated %zu author-mention records (%.1fs)\n", data.size(),
              timer.ElapsedSeconds());

  timer.Reset();
  auto corpus_or = predicates::Corpus::Build(&data, {});
  if (!corpus_or.ok()) return 1;
  const predicates::Corpus& corpus = corpus_or.value();

  predicates::CitationFields fields;
  predicates::CitationS1 s1(&corpus, fields, 0.5 * corpus.MaxIdf(0));
  predicates::CitationS2 s2(&corpus, fields);
  predicates::QGramOverlapPredicate n1(&corpus, 0, 0.6);
  predicates::QGramOverlapPredicate n2(&corpus, 0, 0.6, true);

  topk::PairScoreFn scorer = [&](size_t a, size_t b) {
    const double jw = sim::JaroWinkler(text::NormalizeText(data[a].field(0)),
                                       text::NormalizeText(data[b].field(0)));
    return (jw - 0.75) * 5.0;
  };

  topk::TopKCountOptions options;
  options.k = k;
  options.r = r;
  auto result_or =
      topk::TopKCountQuery(data, {{&s1, &n1}, {&s2, &n2}}, scorer, options);
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const topk::TopKCountResult& result = result_or.value();
  std::printf("query answered in %.2fs\n\n", timer.ElapsedSeconds());

  for (size_t l = 0; l < result.pruning.levels.size(); ++l) {
    const auto& level = result.pruning.levels[l];
    std::printf(
        "level %zu: collapsed to %zu groups, m=%zu M=%.0f, pruned to %zu\n",
        l + 1, level.n_after_collapse, level.m, level.M,
        level.n_after_prune);
  }

  for (size_t a = 0; a < result.answers.size(); ++a) {
    const topk::TopKAnswerSet& answer = result.answers[a];
    std::printf("\n=== answer #%zu (score %.1f) — top %d cited authors\n",
                a + 1, answer.score, k);
    for (size_t g = 0; g < answer.groups.size(); ++g) {
      std::printf("%2zu. %-28s citations=%7.0f mentions=%zu\n", g + 1,
                  data[answer.groups[g].representative].field(0).c_str(),
                  answer.groups[g].weight, answer.groups[g].members.size());
    }
  }
  return 0;
}
