// topkdup_cli: run TopK count / rank / thresholded queries over any CSV
// file from the command line.
//
//   ./build/examples/topkdup_cli --input=mentions.csv [options]
//
// The CSV must have a header row; an optional __weight__ column carries
// per-record weights (counts, scores). Options:
//   --field=NAME          entity-name field the predicates act on
//                         (default: first column)
//   --k=N                 answer groups (default 10)
//   --r=N                 plausible answers for count queries (default 1)
//   --query=count|rank|threshold   (default count)
//   --threshold=T         for --query=threshold
//   --sufficient=exact|none          collapse predicate (default exact)
//   --necessary=qgram:F|words:N|tfidf:C   canopy/necessary predicate
//                         (default qgram:0.6)
//   --scorer-threshold=X  Jaro-Winkler zero point for P (default 0.85)
//
// Example: the ten most frequent organizations in a mention dump:
//   topkdup_cli --input=orgs.csv --field=org --k=10 --r=3
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/strings.h"
#include "common/timer.h"
#include "predicates/corpus.h"
#include "predicates/generic.h"
#include "predicates/tfidf_canopy.h"
#include "record/csv.h"
#include "sim/similarity.h"
#include "text/tokenize.h"
#include "topk/rank_query.h"
#include "topk/topk_query.h"

namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "true";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const char* message) {
  std::fprintf(stderr, "error: %s\n", message);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topkdup;
  const auto flags = ParseFlags(argc, argv);

  const std::string input = FlagOr(flags, "input", "");
  if (input.empty()) {
    return Fail("--input=FILE.csv is required (see file header for usage)");
  }
  auto data_or = record::ReadCsv(input);
  if (!data_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const record::Dataset& data = data_or.value();
  if (data.size() == 0) return Fail("no records");

  const std::string field_name =
      FlagOr(flags, "field", data.schema().field_names().front());
  const int field = data.schema().FieldIndex(field_name);
  if (field < 0) return Fail("--field does not name a CSV column");

  Timer timer;
  auto corpus_or = predicates::Corpus::Build(&data, {});
  if (!corpus_or.ok()) return Fail("corpus build failed");
  const predicates::Corpus& corpus = corpus_or.value();

  // Predicates from the flags.
  std::unique_ptr<predicates::PairPredicate> sufficient;
  const std::string s_spec = FlagOr(flags, "sufficient", "exact");
  if (s_spec == "exact") {
    sufficient = std::make_unique<predicates::ExactFieldsPredicate>(
        &corpus, std::vector<int>{field});
  } else if (s_spec != "none") {
    return Fail("--sufficient must be exact or none");
  }

  std::unique_ptr<predicates::PairPredicate> necessary;
  const std::string n_spec = FlagOr(flags, "necessary", "qgram:0.6");
  const auto n_parts = Split(n_spec, ':');
  const double n_value =
      n_parts.size() > 1 ? std::strtod(n_parts[1].c_str(), nullptr) : 0.0;
  if (n_parts[0] == "qgram") {
    necessary = std::make_unique<predicates::QGramOverlapPredicate>(
        &corpus, field, n_value > 0 ? n_value : 0.6);
  } else if (n_parts[0] == "words") {
    necessary = std::make_unique<predicates::CommonWordsPredicate>(
        &corpus, std::vector<int>{field},
        n_value > 0 ? static_cast<int>(n_value) : 1);
  } else if (n_parts[0] == "tfidf") {
    necessary = std::make_unique<predicates::TfIdfCanopyPredicate>(
        &corpus, field, n_value > 0 ? n_value : 0.3);
  } else {
    return Fail("--necessary must be qgram:F, words:N or tfidf:C");
  }

  const double scorer_zero =
      std::strtod(FlagOr(flags, "scorer-threshold", "0.85").c_str(),
                  nullptr);
  topk::PairScoreFn scorer = [&, field, scorer_zero](size_t a, size_t b) {
    const double jw =
        sim::JaroWinkler(text::NormalizeText(data[a].field(field)),
                         text::NormalizeText(data[b].field(field)));
    return (jw - scorer_zero) * 10.0;
  };

  const int k = static_cast<int>(
      std::strtol(FlagOr(flags, "k", "10").c_str(), nullptr, 10));
  const int r = static_cast<int>(
      std::strtol(FlagOr(flags, "r", "1").c_str(), nullptr, 10));
  std::vector<dedup::PredicateLevel> levels = {
      {sufficient.get(), necessary.get()}};

  const std::string query = FlagOr(flags, "query", "count");
  std::printf("# %zu records from %s; query=%s k=%d (setup %.2fs)\n",
              data.size(), input.c_str(), query.c_str(), k,
              timer.ElapsedSeconds());
  timer.Reset();

  if (query == "count") {
    topk::TopKCountOptions options;
    options.k = k;
    options.r = r;
    auto result_or = topk::TopKCountQuery(data, levels, scorer, options);
    if (!result_or.ok()) {
      return Fail(result_or.status().ToString().c_str());
    }
    std::printf("# answered in %.2fs; pruned to %zu groups%s\n",
                timer.ElapsedSeconds(), result_or.value().pruning.groups.size(),
                result_or.value().exact_from_pruning ? " (exact)" : "");
    for (size_t a = 0; a < result_or.value().answers.size(); ++a) {
      const topk::TopKAnswerSet& answer = result_or.value().answers[a];
      std::printf("answer %zu score %.3f\n", a + 1, answer.score);
      for (const topk::AnswerGroup& g : answer.groups) {
        std::printf("  %-32s weight=%.1f mentions=%zu\n",
                    data[g.representative].field(field).c_str(), g.weight,
                    g.members.size());
      }
    }
  } else if (query == "rank") {
    topk::TopKRankOptions options;
    options.k = k;
    auto result_or = topk::TopKRankQuery(data, levels, options);
    if (!result_or.ok()) {
      return Fail(result_or.status().ToString().c_str());
    }
    std::printf("# answered in %.2fs (%zu resolved-pruned)\n",
                timer.ElapsedSeconds(),
                result_or.value().resolved_pruned);
    const auto& ranked = result_or.value().ranked;
    for (size_t i = 0; i < std::min<size_t>(ranked.size(), k); ++i) {
      std::printf("%2zu. %-32s weight=%.1f upper-bound=%.1f\n", i + 1,
                  data[ranked[i].group.rep].field(field).c_str(),
                  ranked[i].group.weight, ranked[i].upper_bound);
    }
  } else if (query == "threshold") {
    topk::ThresholdedRankOptions options;
    options.threshold =
        std::strtod(FlagOr(flags, "threshold", "0").c_str(), nullptr);
    auto result_or = topk::ThresholdedRankQuery(data, levels, options);
    if (!result_or.ok()) {
      return Fail(result_or.status().ToString().c_str());
    }
    std::printf("# answered in %.2fs; %s\n", timer.ElapsedSeconds(),
                result_or.value().resolved ? "resolved" : "needs exact step");
    for (const topk::RankedGroup& rg : result_or.value().ranked) {
      std::printf("  %-32s weight=%.1f upper-bound=%.1f\n",
                  data[rg.group.rep].field(field).c_str(), rg.group.weight,
                  rg.upper_bound);
    }
  } else {
    return Fail("--query must be count, rank or threshold");
  }
  return 0;
}
