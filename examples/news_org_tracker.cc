// Example: "track the most frequently mentioned organization in an online
// feed of news articles" (a motivating scenario from the paper's intro).
//
// Mentions arrive one at a time into an OnlineTopK stream: the
// sufficient-predicate collapse is maintained incrementally, so each
// leaderboard refresh only pays for pruning + clustering over the current
// *groups*, never a pass over all mentions — the paper's on-the-fly
// deduplication, online.
//
//   ./build/examples/news_org_tracker [--batches=N] [--batch_size=N]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "datagen/lexicon.h"
#include "predicates/corpus.h"
#include "predicates/generic.h"
#include "record/record.h"
#include "sim/similarity.h"
#include "text/tokenize.h"
#include "topk/online.h"

namespace {

int64_t FlagOr(int argc, char** argv, const std::string& key,
               int64_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtoll(arg.c_str() + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

// A small synthetic newsroom: organizations with canonical names and a few
// messy renderings (suffix drops, locality taglines).
struct Organization {
  std::vector<std::string> variants;
};

std::vector<Organization> MakeOrgs(topkdup::Rng* rng, size_t count) {
  using topkdup::datagen::LocalityNames;
  using topkdup::datagen::SyntheticSurname;
  const char* kinds[] = {"systems", "labs", "motors", "industries",
                         "analytics", "energy", "bank", "media"};
  const char* suffixes[] = {"inc", "ltd", "corp", "group"};
  std::vector<Organization> orgs;
  for (size_t i = 0; i < count; ++i) {
    Organization org;
    const std::string stem = SyntheticSurname(rng);
    const std::string kind = kinds[rng->Uniform(8)];
    org.variants = {stem + " " + kind + " " + suffixes[rng->Uniform(4)],
                    stem + " " + kind,
                    stem + " " + kind + " " +
                        LocalityNames()[rng->Uniform(LocalityNames().size())]};
    orgs.push_back(std::move(org));
  }
  return orgs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topkdup;

  const int batches = static_cast<int>(FlagOr(argc, argv, "batches", 5));
  const size_t batch_size =
      static_cast<size_t>(FlagOr(argc, argv, "batch_size", 3000));
  Rng rng(2026);
  const std::vector<Organization> orgs = MakeOrgs(&rng, 400);
  ZipfSampler popularity(orgs.size(), 1.1);

  // Configure the stream: exact normalized match collapses; two common
  // words are necessary for any duplicate; Jaro-Winkler scores the rest.
  topk::OnlineTopK::Config config;
  config.sufficient_signature = [](const record::Record& r) {
    return std::vector<std::string>{text::NormalizeText(r.field(0))};
  };
  config.sufficient_match = [](const record::Record& a,
                               const record::Record& b) {
    return text::NormalizeText(a.field(0)) == text::NormalizeText(b.field(0));
  };
  config.necessary_factory = [](const predicates::Corpus& corpus) {
    return std::make_unique<predicates::CommonWordsPredicate>(
        &corpus, std::vector<int>{0}, 2);
  };
  config.scorer_factory = [](const record::Dataset& reps) {
    return [&reps](size_t a, size_t b) {
      const double jw =
          sim::JaroWinkler(text::NormalizeText(reps[a].field(0)),
                           text::NormalizeText(reps[b].field(0)));
      return (jw - 0.85) * 10.0;
    };
  };
  topk::OnlineTopK stream(record::Schema({"org"}), std::move(config));

  for (int batch = 1; batch <= batches; ++batch) {
    Timer ingest_timer;
    for (size_t i = 0; i < batch_size; ++i) {
      const Organization& org = orgs[popularity.Sample(&rng)];
      record::Record r;
      r.fields = {org.variants[rng.Uniform(org.variants.size())]};
      if (Status st = stream.AddMention(std::move(r)); !st.ok()) {
        std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    const double ingest_seconds = ingest_timer.ElapsedSeconds();

    Timer query_timer;
    topk::TopKCountOptions options;
    options.k = 5;
    options.r = 1;
    auto result_or = stream.Query(options);
    if (!result_or.ok()) {
      std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
      return 1;
    }
    const topk::TopKCountResult& result = result_or.value();

    std::printf("=== batch %d: %zu mentions in %zu groups "
                "(ingest %.3fs, query %.3fs)\n",
                batch, stream.mention_count(), stream.group_count(),
                ingest_seconds, query_timer.ElapsedSeconds());
    if (!result.answers.empty()) {
      for (size_t g = 0; g < result.answers[0].groups.size(); ++g) {
        const topk::AnswerGroup& group = result.answers[0].groups[g];
        std::printf("  %zu. %-28s weight=%6.0f mentions=%zu\n", g + 1,
                    stream.mention(group.representative).field(0).c_str(),
                    group.weight, group.members.size());
      }
    }
  }
  return 0;
}
