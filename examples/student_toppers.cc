// Example: identify the top scoring students across noisy exam records
// (the paper's Students scenario, §6.1.2) using the thresholded rank query
// of §7.2 — "all students with aggregate marks above T" — plus a TopK
// count query for the K best.
//
//   ./build/examples/student_toppers [--records=N] [--threshold=T]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/timer.h"
#include "datagen/student_gen.h"
#include "predicates/corpus.h"
#include "predicates/student.h"
#include "topk/rank_query.h"

namespace {

double FlagOr(int argc, char** argv, const std::string& key,
              double fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtod(arg.c_str() + prefix.size(), nullptr);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topkdup;

  datagen::StudentGenOptions gen;
  gen.num_records =
      static_cast<size_t>(FlagOr(argc, argv, "records", 20000));
  gen.num_students = gen.num_records / 4;
  const double threshold = FlagOr(argc, argv, "threshold", 600.0);

  Timer timer;
  auto data_or = datagen::GenerateStudents(gen);
  if (!data_or.ok()) return 1;
  const record::Dataset& data = data_or.value();
  auto corpus_or = predicates::Corpus::Build(&data, {});
  if (!corpus_or.ok()) return 1;
  const predicates::Corpus& corpus = corpus_or.value();
  std::printf("%zu exam records over ~%zu students (%.1fs setup)\n",
              data.size(), gen.num_students, timer.ElapsedSeconds());

  predicates::StudentFields fields;
  predicates::StudentS1 s1(&corpus, fields);
  predicates::StudentS2 s2(&corpus, fields);
  predicates::StudentN1 n1(&corpus, fields);
  predicates::StudentN2 n2(&corpus, fields);

  // Thresholded rank query: students whose aggregate marks provably can
  // exceed `threshold`.
  timer.Reset();
  topk::ThresholdedRankOptions options;
  options.threshold = threshold;
  auto result_or = topk::ThresholdedRankQuery(
      data, {{&s1, &n1}, {&s2, &n2}}, options);
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const topk::ThresholdedRankResult& result = result_or.value();
  std::printf("\nstudents potentially above %.0f aggregate marks "
              "(%.2fs):\n",
              threshold, timer.ElapsedSeconds());
  std::printf("%s (resolved prefix: %zu)\n",
              result.resolved ? "ranking fully resolved by pruning alone"
                              : "ranking needs exact evaluation for ties",
              result.resolved_count);
  const size_t show = std::min<size_t>(result.ranked.size(), 12);
  for (size_t i = 0; i < show; ++i) {
    const topk::RankedGroup& rg = result.ranked[i];
    const record::Record& rep = data[rg.group.rep];
    std::printf("%2zu. %-22s school=%s class=%s  marks=%7.1f (<= %7.1f) "
                "papers=%zu\n",
                i + 1, rep.field(0).c_str(), rep.field(3).c_str(),
                rep.field(2).c_str(), rg.group.weight, rg.upper_bound,
                rg.group.members.size());
  }
  if (result.ranked.size() > show) {
    std::printf("... and %zu more candidate groups\n",
                result.ranked.size() - show);
  }
  return 0;
}
