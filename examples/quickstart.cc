// Quickstart: answer a TopK count query over a small in-memory list of
// noisy name mentions, getting back the R=2 most plausible answers.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "predicates/corpus.h"
#include "predicates/generic.h"
#include "record/record.h"
#include "sim/similarity.h"
#include "text/tokenize.h"
#include "topk/topk_query.h"

int main() {
  using namespace topkdup;

  // 1. A tiny dataset: repeated, noisy mentions of a few people. In a real
  //    application this would stream in from a feed or a CSV
  //    (record::ReadCsv understands a __weight__ column).
  record::Dataset data{record::Schema({"name"})};
  const char* mentions[] = {
      "maria gonzalez", "maria gonzalez", "maria gonzales",
      "m gonzalez",     "wei zhang",      "wei zhang",
      "wei zhangg",     "otto becker",    "otto becker",
      "ivan petrov",    "maria gonzalez", "wei zhang",
  };
  for (const char* name : mentions) {
    record::Record r;
    r.fields = {name};
    data.Add(std::move(r));
  }

  // 2. Cheap predicate pair: exact normalized match is *sufficient* to
  //    collapse; sharing 60% of 3-grams is *necessary* for any duplicate.
  auto corpus_or = predicates::Corpus::Build(&data, {});
  if (!corpus_or.ok()) {
    std::fprintf(stderr, "%s\n", corpus_or.status().ToString().c_str());
    return 1;
  }
  const predicates::Corpus& corpus = corpus_or.value();
  predicates::ExactFieldsPredicate sufficient(&corpus, {0});
  predicates::QGramOverlapPredicate necessary(&corpus, 0, 0.6);

  // 3. The expensive final criterion P: signed Jaro-Winkler.
  topk::PairScoreFn scorer = [&](size_t a, size_t b) {
    const double jw = sim::JaroWinkler(text::NormalizeText(data[a].field(0)),
                                       text::NormalizeText(data[b].field(0)));
    return (jw - 0.82) * 10.0;
  };

  // 4. Ask for the top K=2 entities, with R=2 alternative answers and
  //    their posterior probabilities under the Gibbs distribution over
  //    groupings.
  topk::TopKCountOptions options;
  options.k = 2;
  options.r = 2;
  options.compute_posteriors = true;
  auto result_or = topk::TopKCountQuery(
      data, {{&sufficient, &necessary}}, scorer, options);
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return 1;
  }

  const topk::TopKCountResult& result = result_or.value();
  std::printf("pruning kept %zu of %zu records%s\n\n",
              result.pruning.groups.size(), data.size(),
              result.exact_from_pruning ? " (answer exact from pruning)"
                                        : "");
  for (size_t r = 0; r < result.answers.size(); ++r) {
    const topk::TopKAnswerSet& answer = result.answers[r];
    std::printf("answer #%zu (score %.2f, posterior %.3f):\n", r + 1,
                answer.score, answer.posterior);
    for (const topk::AnswerGroup& g : answer.groups) {
      std::printf("  %-16s  count=%.0f  members:",
                  data[g.representative].field(0).c_str(), g.weight);
      for (size_t m : g.members) std::printf(" %zu", m);
      std::printf("\n");
    }
  }
  return 0;
}
