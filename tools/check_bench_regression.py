#!/usr/bin/env python3
"""Perf-regression gate over the bench harness JSON dumps.

Compares a freshly produced BENCH_*.json (bench/bench_common.cc's
WriteBenchJson schema) against a committed baseline and fails — exit
status 1 with a readable report — when the fresh run regresses:

  * Deterministic keys must match the baseline EXACTLY. The pipeline's
    outputs are bit-identical at any thread count, so per-level `n`, `m`,
    `M`, `n_prime`, `records_collapsed`, and `groups_pruned` changing at
    all means the algorithm changed, not the machine.
  * Work counters (`cpn_growth_iterations`, `cpn_edges_examined`,
    `blocking_probes`, `predicate_evals`) may grow up to --work-threshold
    (fraction; default 0.5). They are deterministic per run configuration
    but legitimately shift with algorithmic tuning, so the gate only
    catches blow-ups.
  * Per-run wall time (`seconds`) may grow up to --time-threshold
    (fraction; default 0.15). CI runs cross-machine, so its workflow
    passes a much looser bound; the default suits same-machine use.
  * Scalars listed in --exact-scalars (comma-separated keys) must match
    the baseline EXACTLY. The serve load generator's closed-loop counters
    (answered / errors / retries under a fixed fault seed) are
    deterministic replays, so any drift means the admission or retry
    logic changed.

Improvements (fewer seconds, less work) never fail the gate.

Usage:
  check_bench_regression.py --fresh=BENCH_fig2.json \
      --baseline=tools/baselines/BENCH_fig2_ci.json [--time-threshold=3.0]
  check_bench_regression.py --fresh=BENCH_serve.json \
      --baseline=tools/baselines/BENCH_serve_ci.json \
      --exact-scalars=closed.answered,closed.errors,closed.retries
  check_bench_regression.py --baseline=... --self-test

--self-test ignores --fresh: it synthesizes a 20% wall-time regression
from the baseline itself and asserts the gate rejects it (and that the
unmodified baseline passes), proving the gate can fire before CI trusts
it. Stdlib only.
"""

import argparse
import copy
import json
import sys

EXACT_LEVEL_KEYS = ("n", "m", "M", "n_prime", "records_collapsed",
                    "groups_pruned")
WORK_LEVEL_KEYS = ("cpn_growth_iterations", "cpn_edges_examined",
                   "blocking_probes", "predicate_evals",
                   "postings_scanned", "postings_decoded",
                   "blocks_decoded", "blocks_skipped")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("figure", "runs"):
        if key not in doc:
            raise ValueError(f"{path}: missing required key {key!r}")
    return doc


def runs_by_k(doc):
    return {run["k"]: run for run in doc["runs"]}


def compare(baseline, fresh, time_threshold, work_threshold,
            exact_scalars=()):
    """Returns a list of human-readable regression descriptions."""
    problems = []
    if baseline["figure"] != fresh["figure"]:
        problems.append(
            f"figure mismatch: baseline={baseline['figure']!r} "
            f"fresh={fresh['figure']!r}")
        return problems
    if baseline.get("params") != fresh.get("params"):
        problems.append(
            f"params mismatch (different run configuration): "
            f"baseline={baseline.get('params')} fresh={fresh.get('params')}")
        return problems

    base_scalars = baseline.get("scalars", {})
    fresh_scalars = fresh.get("scalars", {})
    for key in exact_scalars:
        if key not in base_scalars:
            problems.append(f"scalar {key!r}: missing from baseline")
        elif key not in fresh_scalars:
            problems.append(f"scalar {key!r}: missing from fresh run")
        elif base_scalars[key] != fresh_scalars[key]:
            problems.append(
                f"scalar {key!r}: deterministic value changed "
                f"{base_scalars[key]} -> {fresh_scalars[key]} "
                f"(must match exactly)")

    base_runs, fresh_runs = runs_by_k(baseline), runs_by_k(fresh)
    for k in sorted(base_runs):
        if k not in fresh_runs:
            problems.append(f"K={k}: present in baseline, missing from fresh run")
            continue
        base, new = base_runs[k], fresh_runs[k]

        base_s, new_s = base["seconds"], new["seconds"]
        if base_s > 0 and new_s > base_s * (1.0 + time_threshold):
            problems.append(
                f"K={k}: wall time regressed {base_s:.3f}s -> {new_s:.3f}s "
                f"(+{100.0 * (new_s / base_s - 1.0):.1f}%, "
                f"threshold +{100.0 * time_threshold:.0f}%)")

        if len(base["levels"]) != len(new["levels"]):
            problems.append(
                f"K={k}: level count changed "
                f"{len(base['levels'])} -> {len(new['levels'])}")
            continue
        for l, (bl, nl) in enumerate(zip(base["levels"], new["levels"])):
            for key in EXACT_LEVEL_KEYS:
                if bl[key] != nl[key]:
                    problems.append(
                        f"K={k} level {l + 1}: deterministic key {key!r} "
                        f"changed {bl[key]} -> {nl[key]} (must match exactly)")
            for key in WORK_LEVEL_KEYS:
                # Newer keys (the blocked-index decode counters) may be
                # absent from baselines captured before they existed.
                if key not in bl or key not in nl:
                    continue
                if bl[key] > 0 and nl[key] > bl[key] * (1.0 + work_threshold):
                    problems.append(
                        f"K={k} level {l + 1}: work counter {key!r} regressed "
                        f"{bl[key]} -> {nl[key]} "
                        f"(+{100.0 * (nl[key] / bl[key] - 1.0):.1f}%, "
                        f"threshold +{100.0 * work_threshold:.0f}%)")
    return problems


def self_test(baseline, time_threshold, work_threshold, exact_scalars):
    """The gate must accept the baseline vs itself and reject a synthetic
    20% wall-time regression of every run (plus a drifted deterministic
    scalar when --exact-scalars is in play)."""
    clean = compare(baseline, copy.deepcopy(baseline), time_threshold,
                    work_threshold, exact_scalars)
    if clean:
        print("SELF-TEST FAILED: baseline vs itself reported regressions:")
        for p in clean:
            print(f"  {p}")
        return 1

    regressed = copy.deepcopy(baseline)
    for run in regressed["runs"]:
        run["seconds"] *= 1.20
    if exact_scalars:
        regressed.setdefault("scalars", {})[exact_scalars[0]] = (
            baseline.get("scalars", {}).get(exact_scalars[0], 0) + 1)
    problems = compare(baseline, regressed, time_threshold, work_threshold,
                       exact_scalars)
    if not problems:
        print("SELF-TEST FAILED: synthetic +20% wall-time regression "
              f"passed the gate (time threshold {time_threshold})")
        return 1
    print(f"self-test OK: baseline passes against itself; synthetic +20% "
          f"wall-time regression rejected with {len(problems)} finding(s), "
          "e.g.:")
    print(f"  {problems[0]}")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--fresh", help="freshly produced BENCH_*.json")
    parser.add_argument("--time-threshold", type=float, default=0.15,
                        help="allowed fractional wall-time growth "
                             "(default 0.15; CI uses a loose cross-machine "
                             "bound)")
    parser.add_argument("--work-threshold", type=float, default=0.5,
                        help="allowed fractional work-counter growth "
                             "(default 0.5)")
    parser.add_argument("--exact-scalars", default="",
                        help="comma-separated scalar keys that must match "
                             "the baseline exactly (deterministic serve "
                             "counters)")
    parser.add_argument("--self-test", action="store_true",
                        help="synthesize a 20%% wall-time regression from "
                             "the baseline and assert the gate rejects it")
    args = parser.parse_args(argv)

    exact_scalars = [k for k in args.exact_scalars.split(",") if k]
    baseline = load(args.baseline)
    if args.self_test:
        # The synthetic regression is +20%; the check only proves the gate
        # fires when the threshold is below that.
        if args.time_threshold >= 0.20:
            print(f"SELF-TEST FAILED: --time-threshold={args.time_threshold} "
                  "is >= 0.20, the synthetic regression would pass")
            return 1
        return self_test(baseline, args.time_threshold, args.work_threshold,
                         exact_scalars)

    if not args.fresh:
        parser.error("--fresh is required unless --self-test is given")
    fresh = load(args.fresh)
    problems = compare(baseline, fresh, args.time_threshold,
                       args.work_threshold, exact_scalars)
    if problems:
        print(f"PERF REGRESSION: {args.fresh} vs {args.baseline} "
              f"({len(problems)} finding(s)):")
        for p in problems:
            print(f"  {p}")
        print("If the change is intentional, refresh the baseline "
              "(see EXPERIMENTS.md, 'Refreshing the CI perf baseline').")
        return 1
    print(f"OK: {args.fresh} within thresholds of {args.baseline} "
          f"(time +{100.0 * args.time_threshold:.0f}%, "
          f"work +{100.0 * args.work_threshold:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
