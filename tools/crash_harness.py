#!/usr/bin/env python3
"""Kill -9 chaos harness for the durable online-ingest path.

Each round starts `bench/load_serve` in its durable-ingest configuration
(--wal-dir + --ack-log, no query phases), SIGKILLs it at a random moment
mid-ingest, restarts it in --verify mode against the same wal_dir, and
asserts the recovery contract:

  * Zero acknowledged loss: every mention whose index made it into the
    ack log (written only *after* Ingest returned OK) is present after
    recovery — `verify.recovered >= last acked index`.
  * No duplicates, no divergence: the verifier inside load_serve checks
    the recovered stream is exactly the canonical prefix [0, recovered)
    and that its query answer is bit-identical to an uncrashed in-memory
    reference rebuilt from the same prefix (`verify.match=1`); the
    harness only has to trust its exit status and markers.
  * Recovery surfaces in the counters: `wal.recovered_mentions` on the
    restart equals the recovered count.

On top of the kill -9 rounds the harness runs three edge rounds:

  * clean round: SIGTERM instead of SIGKILL — the run must print
    `clean_shutdown=1`, and the next start must recover checkpoint-only
    (empty WAL tail).
  * torn-tail round: append garbage bytes to the WAL after a kill; the
    restart must truncate the tail (`wal.truncated_tail_bytes > 0`) and
    still verify.
  * corruption round: flip a byte in the middle of a multi-frame WAL;
    the restart must fail with a typed InvalidArgument — never recover
    silently, never crash.

Exit 0 when every round holds; exit 1 with a readable report otherwise.
Stdlib only.

Usage:
  crash_harness.py --binary=build/bench/load_serve [--rounds=5]
      [--seed=20090324] [--workdir=/tmp/topkdup-chaos] [--fsync=never]
      [--wal-fault-prob=0.02]
"""

import argparse
import os
import pathlib
import random
import shutil
import signal
import subprocess
import sys
import time

INGEST = 500000  # Far more than any round completes; the kill decides.
KEYS = 20
CHECKPOINT_BYTES = 65536


def parse_marker(text, key):
    """Last `key=<int>` occurrence in `text`, or None."""
    value = None
    for line in text.splitlines():
        for token in line.split():
            if token.startswith(key + "="):
                try:
                    value = int(token.split("=", 1)[1])
                except ValueError:
                    pass
    return value


class Round:
    def __init__(self, args, wal_dir, ack_log):
        self.args = args
        self.wal_dir = wal_dir
        self.ack_log = ack_log

    def ingest_cmd(self):
        cmd = [
            self.args.binary,
            "--requests=0",
            "--rates=50",
            "--ingest=%d" % INGEST,
            "--ingest-keys=%d" % KEYS,
            "--wal-dir=%s" % self.wal_dir,
            "--ack-log=%s" % self.ack_log,
            "--checkpoint-bytes=%d" % CHECKPOINT_BYTES,
            "--wal-fsync=%s" % self.args.fsync,
            # Publishing an epoch snapshots the whole stream (O(mentions));
            # per-ingest publication would make a 500k-mention round
            # quadratic. Batching keeps the ingest loop linear while still
            # exercising epoch persistence across the kill.
            "--epoch-batch-ms=50",
        ]
        if self.args.wal_fault_prob > 0:
            cmd += ["--wal-fault-prob=%g" % self.args.wal_fault_prob]
        return cmd

    def verify_cmd(self):
        return [
            self.args.binary,
            "--requests=0",
            "--rates=50",
            "--verify=1",
            "--ingest-keys=%d" % KEYS,
            "--wal-dir=%s" % self.wal_dir,
            "--wal-fsync=%s" % self.args.fsync,
        ]

    def last_acked(self):
        try:
            with open(self.ack_log) as f:
                lines = f.read().splitlines()
        except FileNotFoundError:
            return 0
        # The final line can be torn by the kill; walk back to the last
        # complete integer.
        for line in reversed(lines):
            try:
                return int(line)
            except ValueError:
                continue
        return 0

    def run_ingest_and_kill(self, delay, sig):
        proc = subprocess.Popen(
            self.ingest_cmd(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        time.sleep(delay)
        proc.send_signal(sig)
        try:
            out, _ = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, _ = proc.communicate()
            raise AssertionError("ingest run hung after signal %d" % sig)
        return out, proc.returncode

    def run_verify(self):
        proc = subprocess.run(
            self.verify_cmd(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            timeout=120,
        )
        return proc.stdout, proc.returncode


def wal_path(wal_dir):
    return os.path.join(wal_dir, "stream.wal")


def fresh_dir(base, name):
    d = os.path.join(base, name)
    shutil.rmtree(d, ignore_errors=True)
    os.makedirs(d)
    return d


def kill9_round(args, rng, base, index):
    wal_dir = fresh_dir(base, "kill9-%d" % index)
    r = Round(args, wal_dir, os.path.join(wal_dir, "ack.log"))
    delay = rng.uniform(0.1, 1.2)
    out, rc = r.run_ingest_and_kill(delay, signal.SIGKILL)
    if rc >= 0:
        raise AssertionError(
            "kill9 round %d: expected death by signal, exit=%d\n%s"
            % (index, rc, out)
        )
    acked = r.last_acked()
    vout, vrc = r.run_verify()
    if vrc != 0:
        raise AssertionError(
            "kill9 round %d: recovery failed (exit %d)\n%s" % (index, vrc, vout)
        )
    recovered = parse_marker(vout, "verify.recovered")
    match = parse_marker(vout, "verify.match")
    counter = parse_marker(vout, "wal.recovered_mentions")
    if recovered is None or match != 1:
        raise AssertionError(
            "kill9 round %d: missing verify markers\n%s" % (index, vout)
        )
    if recovered < acked:
        raise AssertionError(
            "kill9 round %d: ACKNOWLEDGED LOSS — acked %d, recovered %d\n%s"
            % (index, acked, recovered, vout)
        )
    if counter != recovered:
        raise AssertionError(
            "kill9 round %d: wal.recovered_mentions=%s != recovered=%d\n%s"
            % (index, counter, recovered, vout)
        )
    # Recovery must re-establish the epoch counter: a recovered non-empty
    # stream republishes at an epoch strictly above zero (WAL frames and
    # checkpoints both persist epoch ids).
    epoch = parse_marker(vout, "online.epoch")
    if recovered > 0 and not epoch:
        raise AssertionError(
            "kill9 round %d: recovered %d mentions but online.epoch=%s — "
            "epoch counter lost across the crash\n%s"
            % (index, recovered, epoch, vout)
        )
    print(
        "round kill9-%d: killed after %.2fs, acked=%d recovered=%d "
        "epoch=%s OK" % (index, delay, acked, recovered, epoch)
    )


def clean_round(args, rng, base):
    wal_dir = fresh_dir(base, "clean")
    r = Round(args, wal_dir, os.path.join(wal_dir, "ack.log"))
    out, rc = r.run_ingest_and_kill(rng.uniform(0.2, 0.8), signal.SIGTERM)
    if rc != 0 or "clean_shutdown=1" not in out:
        raise AssertionError(
            "clean round: SIGTERM should shut down cleanly (exit %d)\n%s"
            % (rc, out)
        )
    acked = r.last_acked()
    # A clean shutdown checkpointed everything: the WAL must hold only its
    # 16-byte file header.
    size = os.path.getsize(wal_path(wal_dir))
    if size != 16:
        raise AssertionError(
            "clean round: WAL not trimmed after clean shutdown (%d bytes)"
            % size
        )
    vout, vrc = r.run_verify()
    recovered = parse_marker(vout, "verify.recovered")
    if vrc != 0 or recovered is None or recovered < acked:
        raise AssertionError(
            "clean round: restart after clean shutdown failed "
            "(exit %d, acked %d)\n%s" % (vrc, acked, vout)
        )
    print(
        "round clean: clean_shutdown=1, wal trimmed, acked=%d recovered=%d OK"
        % (acked, recovered)
    )


def torn_tail_round(args, rng, base):
    wal_dir = fresh_dir(base, "torn")
    r = Round(args, wal_dir, os.path.join(wal_dir, "ack.log"))
    out, rc = r.run_ingest_and_kill(rng.uniform(0.2, 0.8), signal.SIGKILL)
    if rc >= 0:
        raise AssertionError("torn round: expected death by signal\n%s" % out)
    # Simulate a torn sector write: garbage appended past the last frame.
    with open(wal_path(wal_dir), "ab") as f:
        f.write(bytes(rng.randrange(256) for _ in range(rng.randrange(1, 15))))
    vout, vrc = r.run_verify()
    truncated = parse_marker(vout, "wal.truncated_tail_bytes")
    match = parse_marker(vout, "verify.match")
    if vrc != 0 or match != 1 or not truncated:
        raise AssertionError(
            "torn round: expected sound truncation + verify "
            "(exit %d, truncated=%s)\n%s" % (vrc, truncated, vout)
        )
    print("round torn: %d tail bytes truncated, verify OK" % truncated)


def corruption_round(args, rng, base):
    wal_dir = fresh_dir(base, "corrupt")
    r = Round(args, wal_dir, os.path.join(wal_dir, "ack.log"))
    out, rc = r.run_ingest_and_kill(rng.uniform(0.3, 0.9), signal.SIGKILL)
    if rc >= 0:
        raise AssertionError(
            "corrupt round: expected death by signal\n%s" % out
        )
    path = wal_path(wal_dir)
    size = os.path.getsize(path)
    if size < 200:
        # Too few frames survived to corrupt mid-file; count the round as
        # vacuous rather than flaky — the seeded RNG makes this stable.
        print("round corrupt: WAL too short (%d bytes), skipped" % size)
        return
    # Flip one byte well inside the frame stream, far from the tail, so
    # the damage cannot be mistaken for a torn tail.
    offset = rng.randrange(32, size // 2)
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))
    vout, vrc = r.run_verify()
    if vrc == 0:
        raise AssertionError(
            "corrupt round: mid-file corruption at offset %d was silently "
            "accepted\n%s" % (offset, vout)
        )
    if "InvalidArgument" not in vout:
        raise AssertionError(
            "corrupt round: expected a typed InvalidArgument, got exit %d\n%s"
            % (vrc, vout)
        )
    print(
        "round corrupt: byte flip at %d rejected with InvalidArgument OK"
        % offset
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--seed", type=int, default=20090324)
    parser.add_argument("--workdir", default="/tmp/topkdup-chaos")
    parser.add_argument(
        "--fsync",
        default="never",
        choices=["never", "interval", "every_n", "always"],
        help="WAL fsync policy under test. kill -9 must lose nothing under "
        "ANY policy (the data reached the page cache before the ack); "
        "'never' is the default because it is the fastest and the most "
        "adversarial for the recovery path.",
    )
    parser.add_argument(
        "--wal-fault-prob",
        type=float,
        default=0.002,
        help="Probability for the wal.append/wal.fsync injected faults "
        "during ingest rounds, so kills land on a workload that is also "
        "exercising the rollback/retry path.",
    )
    args = parser.parse_args()

    if not os.path.isfile(args.binary):
        print("no such binary: %s" % args.binary, file=sys.stderr)
        return 1
    rng = random.Random(args.seed)
    base = args.workdir
    pathlib.Path(base).mkdir(parents=True, exist_ok=True)

    failures = []
    rounds = [("clean", lambda: clean_round(args, rng, base)),
              ("torn", lambda: torn_tail_round(args, rng, base)),
              ("corrupt", lambda: corruption_round(args, rng, base))]
    rounds = [
        ("kill9-%d" % i, (lambda i=i: kill9_round(args, rng, base, i)))
        for i in range(args.rounds)
    ] + rounds
    for name, fn in rounds:
        try:
            fn()
        except AssertionError as e:
            failures.append((name, str(e)))
            print("FAIL %s: %s" % (name, e), file=sys.stderr)

    if failures:
        print(
            "\nchaos harness: %d/%d rounds failed"
            % (len(failures), len(rounds)),
            file=sys.stderr,
        )
        return 1
    print("\nchaos harness: all %d rounds green" % len(rounds))
    return 0


if __name__ == "__main__":
    sys.exit(main())
