#!/usr/bin/env python3
"""Deterministic ingest/query interleaving checker for epoch snapshots.

Drives `bench/load_serve --epoch-schedule=...` (the in-binary interleaving
driver) and validates every printed answer against a serial oracle that
recomputes the truth from the canonical mention sequence (mention i has
key i%keys and weight 1.0+(i%7)*0.5 — all sums are exact dyadic floats,
so comparisons are bit-meaningful). The soundness contract under test:

  * Every answer self-describes the stream prefix it was computed at
    (`schedule.q mentions=N`). Exact answers must equal the oracle at N
    bit-for-bit; an answer computed at *no* consistent prefix — a torn
    read of a half-applied ingest — cannot match any oracle and fails.
  * Stale cache hits are degraded but sound: every reported group's
    [count_lower, count_upper] interval must contain the truth at the
    *current* prefix, with count_upper widened by exactly the weight
    published since the cached epoch.
  * Readers never block on the writer: `online.reader_blocked` stays 0
    in every round, including the racing round (reader threads querying
    while the main thread ingests and publishes).
  * Crash recovery re-establishes the epoch counter: after an in-schedule
    `halt` (simulated crash, exit 7), a restart over the same WAL answers
    queries immediately — racing recovery-adjacent first reads — at an
    epoch strictly above the pre-crash epoch, with oracle-exact answers.

Rounds: serial (interleaved ingest/query/stale), racing (xA:B:C token),
recovery (halt + restart + verify), cache (miss/hit/stale_hit/miss
disposition sequence with a bit-identical hit).

Exit 0 when every round holds; exit 1 with a readable report otherwise.
Stdlib only.

Usage:
  epoch_harness.py --binary=build/bench/load_serve
      [--workdir=/tmp/topkdup-epochs]
"""

import argparse
import os
import pathlib
import shutil
import subprocess
import sys

KEYS = 5
K = 5
EPS = 1e-9


def weight(i):
    return 1.0 + (i % 7) * 0.5


def oracle_groups(prefix, keys=KEYS):
    """Top groups at canonical prefix [0, prefix): (rep, weight, members),
    sorted by weight desc, smallest-member asc — the pipeline's order."""
    groups = {}
    for i in range(prefix):
        g = groups.setdefault(i % keys, {"w": 0.0, "members": []})
        g["w"] += weight(i)
        g["members"].append(i)
    out = []
    for g in groups.values():
        rep = max(g["members"], key=weight)
        out.append((rep, g["w"], len(g["members"]), min(g["members"])))
    out.sort(key=lambda t: (-t[1], t[3]))
    return [(rep, w, n) for rep, w, n, _ in out]


def run(cmd, timeout=120, expect_rc=0):
    proc = subprocess.run(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=timeout,
    )
    if expect_rc is not None and proc.returncode != expect_rc:
        raise AssertionError(
            "command %s: exit %d (wanted %d)\n%s"
            % (" ".join(cmd), proc.returncode, expect_rc, proc.stdout)
        )
    return proc.stdout


def parse_queries(text):
    """All schedule.q events, each with its schedule.group lines attached."""
    queries = []
    for line in text.splitlines():
        if line.startswith("schedule.q "):
            q = {"groups": [], "raw": [line]}
            for token in line.split()[1:]:
                key, _, value = token.partition("=")
                q[key] = value
            q["epoch"] = int(q["epoch"])
            q["mentions"] = int(q["mentions"])
            q["staleness"] = float(q["staleness"])
            queries.append(q)
        elif line.startswith("schedule.group "):
            g = {}
            for token in line.split()[1:]:
                key, _, value = token.partition("=")
                g[key] = value
            queries[-1]["groups"].append(
                (int(g["rep"]), float(g["w"]), float(g["lo"]),
                 float(g["hi"]), int(g["n"]))
            )
            queries[-1]["raw"].append(line)
    return queries


def parse_marker(text, key):
    value = None
    for line in text.splitlines():
        for token in line.split():
            if token.startswith(key + "="):
                try:
                    value = int(token.split("=", 1)[1])
                except ValueError:
                    pass
    return value


def check_exact(q, label):
    """An exact answer must equal the oracle at its self-described prefix."""
    if q["outcome"] != "exact":
        raise AssertionError(
            "%s: expected an exact answer, got outcome=%s\n%s"
            % (label, q["outcome"], "\n".join(q["raw"]))
        )
    want = oracle_groups(q["mentions"])[:K]
    got = [(rep, w, n) for rep, w, lo, hi, n in q["groups"]]
    ok = len(got) == len(want) and all(
        gr == wr and gn == wn and abs(gw - ww) < EPS
        for (gr, gw, gn), (wr, ww, wn) in zip(got, want)
    )
    if not ok:
        raise AssertionError(
            "%s: exact answer at prefix %d diverges from the oracle\n"
            "got:  %s\nwant: %s" % (label, q["mentions"], got, want)
        )
    for rep, w, lo, hi, n in q["groups"]:
        if abs(lo - w) > EPS or abs(hi - w) > EPS:
            raise AssertionError(
                "%s: exact answer has non-tight bounds (rep %d: w=%g "
                "lo=%g hi=%g)" % (label, rep, w, lo, hi)
            )


def check_stale(q, current_prefix, label):
    """A stale hit's intervals must contain the truth at the current
    prefix, and its exact fields must match the oracle at the cached one."""
    if q["cache"] != "stale_hit" or q["outcome"] != "degraded":
        raise AssertionError(
            "%s: expected a degraded stale hit, got cache=%s outcome=%s\n%s"
            % (label, q["cache"], q["outcome"], "\n".join(q["raw"]))
        )
    cached_w = sum(weight(i) for i in range(q["mentions"]))
    current_w = sum(weight(i) for i in range(current_prefix))
    if abs(q["staleness"] - (current_w - cached_w)) > EPS:
        raise AssertionError(
            "%s: staleness_weight=%g != weight ingested since the cached "
            "epoch (%g)" % (label, q["staleness"], current_w - cached_w)
        )
    truth = {rep % KEYS: w for rep, w, n in oracle_groups(current_prefix)}
    for rep, w, lo, hi, n in q["groups"]:
        t = truth[rep % KEYS]
        if not (lo - EPS <= t <= hi + EPS):
            raise AssertionError(
                "%s: UNSOUND stale answer — truth %g for key %d outside "
                "[%g, %g]\n%s"
                % (label, t, rep % KEYS, lo, hi, "\n".join(q["raw"]))
            )
        if abs(hi - (lo + q["staleness"])) > EPS:
            raise AssertionError(
                "%s: upper bound not widened by the staleness weight "
                "(rep %d: lo=%g hi=%g staleness=%g)"
                % (label, rep, lo, hi, q["staleness"])
            )


def base_cmd(args, extra):
    return [
        args.binary,
        "--requests=0",
        "--rates=50",
        "--ingest-keys=%d" % KEYS,
        "--k=%d" % K,
    ] + extra


def check_reader_never_blocked(out, label):
    blocked = parse_marker(out, "online.reader_blocked")
    if blocked != 0:
        raise AssertionError(
            "%s: online.reader_blocked=%s — a reader waited on the writer "
            "lock\n%s" % (label, blocked, out)
        )


def serial_round(args):
    out = run(base_cmd(args, ["--epoch-schedule=i7,q,i3,s,q,i15,s,q"]))
    qs = parse_queries(out)
    if len(qs) != 5:
        raise AssertionError("serial: expected 5 queries\n%s" % out)
    check_exact(qs[0], "serial q@7")
    check_stale(qs[1], 10, "serial s@10")
    check_exact(qs[2], "serial q@10")
    check_stale(qs[3], 25, "serial s@25")
    check_exact(qs[4], "serial q@25")
    for q, prefix in zip(qs, (7, 7, 10, 10, 25)):
        if q["mentions"] != prefix:
            raise AssertionError(
                "serial: answer self-describes prefix %d, schedule says %d"
                % (q["mentions"], prefix)
            )
    check_reader_never_blocked(out, "serial")
    print("round serial: 5 answers validated against the oracle OK")


def racing_round(args):
    # 4 reader threads x 8 queries race the main thread ingesting 500
    # mentions on top of a 10-mention base. Every reader answer must match
    # the oracle at whatever prefix it self-describes — any torn read
    # matches no prefix and fails.
    # --cache=off so every reader query actually executes against a pinned
    # snapshot instead of repeatedly serving the same cached prefix.
    out = run(
        base_cmd(args, ["--cache=off", "--epoch-schedule=i10,x500:4:8,d,q"])
    )
    qs = parse_queries(out)
    if len(qs) != 4 * 8 + 1:
        raise AssertionError("racing: expected 33 queries\n%s" % out)
    prefixes = set()
    for i, q in enumerate(qs):
        if not 10 <= q["mentions"] <= 510:
            raise AssertionError(
                "racing q%d: impossible prefix %d" % (i, q["mentions"])
            )
        check_exact(q, "racing q%d" % i)
        prefixes.add(q["mentions"])
    if qs[-1]["mentions"] != 510:
        raise AssertionError(
            "racing: final serial query saw prefix %d, want 510"
            % qs[-1]["mentions"]
        )
    check_reader_never_blocked(out, "racing")
    print(
        "round racing: %d answers across %d distinct pinned prefixes OK"
        % (len(qs), len(prefixes))
    )


def recovery_round(args, base):
    wal_dir = os.path.join(base, "recovery")
    shutil.rmtree(wal_dir, ignore_errors=True)
    os.makedirs(wal_dir)
    wal = ["--wal-dir=%s" % wal_dir, "--wal-fsync=always"]
    # Crash mid-session: `halt` is _Exit(7) — no drain, no checkpoint.
    out = run(
        base_cmd(args, wal + ["--epoch-schedule=i12,q,halt"]), expect_rc=7
    )
    qs = parse_queries(out)
    check_exact(qs[0], "recovery pre-crash q@12")
    pre_epoch = qs[0]["epoch"]
    # Restart over the same WAL with queries *first* (x0:2:3 fires 6
    # concurrent reads before any new ingest), then verify the canonical
    # prefix survived and the epoch counter moved strictly forward.
    vout = run(
        base_cmd(args, wal + ["--verify=1", "--epoch-schedule=x0:2:3,i5,q"])
    )
    if parse_marker(vout, "verify.match") != 1:
        raise AssertionError("recovery: restart verify failed\n%s" % vout)
    if parse_marker(vout, "verify.recovered") != 12:
        raise AssertionError(
            "recovery: expected 12 recovered mentions\n%s" % vout
        )
    vqs = parse_queries(vout)
    if len(vqs) != 7:
        raise AssertionError("recovery: expected 7 restart queries\n%s" % vout)
    for i, q in enumerate(vqs[:-1]):
        check_exact(q, "recovery restart q%d" % i)
        if q["mentions"] != 12:
            raise AssertionError(
                "recovery restart q%d: prefix %d, want the recovered 12"
                % (i, q["mentions"])
            )
        if q["epoch"] <= pre_epoch:
            raise AssertionError(
                "recovery: post-restart epoch %d did not advance past the "
                "pre-crash epoch %d" % (q["epoch"], pre_epoch)
            )
    check_exact(vqs[-1], "recovery q@17")
    if vqs[-1]["mentions"] != 17:
        raise AssertionError(
            "recovery: post-ingest prefix %d, want 17" % vqs[-1]["mentions"]
        )
    check_reader_never_blocked(vout, "recovery")
    print(
        "round recovery: crash at epoch %d, restart answered at epoch %d OK"
        % (pre_epoch, vqs[0]["epoch"])
    )


def cache_round(args):
    out = run(base_cmd(args, ["--epoch-schedule=i8,q,q,i4,s,q"]))
    qs = parse_queries(out)
    if len(qs) != 4:
        raise AssertionError("cache: expected 4 queries\n%s" % out)
    dispositions = [q["cache"] for q in qs]
    if dispositions != ["miss", "hit", "stale_hit", "miss"]:
        raise AssertionError(
            "cache: disposition sequence %s, want miss/hit/stale_hit/miss"
            % dispositions
        )
    check_exact(qs[0], "cache miss@8")
    check_exact(qs[1], "cache hit@8")
    # The cache hit must be bit-identical to the uncached answer — same
    # marker lines except the disposition field.
    strip = [l.replace("cache=miss", "").replace("cache=hit", "")
             for l in qs[0]["raw"] + qs[1]["raw"]]
    if strip[: len(qs[0]["raw"])] != strip[len(qs[0]["raw"]):]:
        raise AssertionError(
            "cache: hit diverges from the uncached answer\n%s\nvs\n%s"
            % ("\n".join(qs[0]["raw"]), "\n".join(qs[1]["raw"]))
        )
    check_stale(qs[2], 12, "cache stale@12")
    check_exact(qs[3], "cache refreshed q@12")
    check_reader_never_blocked(out, "cache")
    print("round cache: miss/hit/stale_hit/miss, hit bit-identical OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True)
    parser.add_argument("--workdir", default="/tmp/topkdup-epochs")
    args = parser.parse_args()

    if not os.path.isfile(args.binary):
        print("no such binary: %s" % args.binary, file=sys.stderr)
        return 1
    pathlib.Path(args.workdir).mkdir(parents=True, exist_ok=True)

    rounds = [
        ("serial", lambda: serial_round(args)),
        ("racing", lambda: racing_round(args)),
        ("recovery", lambda: recovery_round(args, args.workdir)),
        ("cache", lambda: cache_round(args)),
    ]
    failures = []
    for name, fn in rounds:
        try:
            fn()
        except AssertionError as e:
            failures.append((name, str(e)))
            print("FAIL %s: %s" % (name, e), file=sys.stderr)

    if failures:
        print(
            "\nepoch harness: %d/%d rounds failed"
            % (len(failures), len(rounds)),
            file=sys.stderr,
        )
        return 1
    print("\nepoch harness: all %d rounds green" % len(rounds))
    return 0


if __name__ == "__main__":
    sys.exit(main())
